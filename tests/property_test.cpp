// Property-based suites (parameterized gtest): invariants that must hold
// across seeds, sizes, budgets and parameter sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "model/tradeoff.hpp"
#include "monitor/estimator.hpp"
#include "net/transfer.hpp"
#include "sched/multipath.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

using cloud::Region;
using sage::testing::StableWorld;
using sage::testing::run_until;

// ---------------------------------------------------------------------------
// Fabric conservation: whatever the seed and flow mix, completed flows
// deliver exactly their size, and egress equals the sum of cross-region
// deliveries.
// ---------------------------------------------------------------------------

class FabricConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricConservation, BytesAreConserved) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::default_topology(), GetParam());
  Rng rng(GetParam() ^ 0xabcdef);

  std::vector<cloud::NodeId> nodes;
  for (Region r : cloud::kAllRegions) {
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(fabric.add_node(r, ByteRate::megabits_per_sec(100),
                                      ByteRate::megabits_per_sec(100)));
    }
  }

  Bytes expected_egress = Bytes::zero();
  Bytes delivered = Bytes::zero();
  int done = 0;
  const int kFlows = 24;
  for (int i = 0; i < kFlows; ++i) {
    const auto src = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    auto dst = src;
    while (dst == src) {
      dst = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    }
    const Bytes size = Bytes::mb(rng.uniform(1.0, 20.0));
    if (fabric.node_region(src) != fabric.node_region(dst)) expected_egress += size;
    fabric.start_flow(src, dst, size, {}, [&, size](const cloud::FlowResult& r) {
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(r.transferred, size);
      delivered += r.transferred;
      ++done;
    });
  }
  ASSERT_TRUE(run_until(engine, [&] { return done == kFlows; }, SimDuration::hours(6)));

  Bytes total_egress = Bytes::zero();
  for (Region r : cloud::kAllRegions) total_egress += fabric.egress_from(r);
  // Egress counters integrate rate*dt with per-tick rounding; allow a
  // byte-level tolerance per flow.
  EXPECT_NEAR(total_egress.to_mb(), expected_egress.to_mb(), 0.01);
  EXPECT_GT(delivered, Bytes::zero());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricConservation,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------------
// Fabric fairness: at every settle point, no flow exceeds its demand cap or
// the pair link's per-flow ceiling.
// ---------------------------------------------------------------------------

class FabricCeilings : public ::testing::TestWithParam<int> {};

TEST_P(FabricCeilings, RatesNeverExceedCeilings) {
  const int flows = GetParam();
  StableWorld world;
  auto& provider = *world.provider;
  const auto a = provider.provision_many(Region::kNorthEU, cloud::VmSize::kSmall, flows);
  const auto b = provider.provision_many(Region::kNorthUS, cloud::VmSize::kSmall, flows);
  const double flow_cap = provider.topology()
                              .link(Region::kNorthEU, Region::kNorthUS)
                              .per_flow_cap.to_mb_per_sec();

  std::vector<cloud::FlowId> ids;
  int done = 0;
  for (int i = 0; i < flows; ++i) {
    ids.push_back(provider.transfer(a[static_cast<std::size_t>(i)].id,
                                    b[static_cast<std::size_t>(i)].id, Bytes::mb(30), {},
                                    [&](const cloud::FlowResult&) { ++done; }));
  }
  for (int step = 0; step < 20 && done < flows; ++step) {
    world.engine.run_until(world.engine.now() + SimDuration::seconds(1));
    for (const auto id : ids) {
      const double rate = provider.fabric().flow_rate(id).to_mb_per_sec();
      EXPECT_LE(rate, flow_cap * 1.0001);
    }
  }
  ASSERT_TRUE(run_until(world.engine, [&] { return done == flows; }, SimDuration::hours(4)));
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, FabricCeilings, ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Transfer completeness: across chunk sizes and stream counts, every byte
// arrives exactly once (dedup absorbs any retransmit races).
// ---------------------------------------------------------------------------

class TransferMatrix
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(TransferMatrix, DeliversExactlyOnce) {
  const auto [chunk_kb, streams] = GetParam();
  StableWorld world;
  auto& provider = *world.provider;
  const auto a = provider.provision(Region::kNorthEU, cloud::VmSize::kSmall);
  const auto b = provider.provision(Region::kNorthUS, cloud::VmSize::kSmall);

  net::TransferConfig config;
  config.chunk_size = Bytes::kb(static_cast<double>(chunk_kb));
  config.streams_per_hop = streams;
  const Bytes size = Bytes::mb(11);  // deliberately not chunk-aligned

  net::TransferResult result{};
  bool done = false;
  net::GeoTransfer t(provider, size, net::direct_lane(a.id, b.id), config,
                     [&](const net::TransferResult& r) {
                       result = r;
                       done = true;
                     });
  t.start();
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(6)));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.size, size);
  EXPECT_EQ(result.stats.chunks_delivered, result.stats.chunks_total);
  const auto expected_chunks =
      (size.count() + config.chunk_size.count() - 1) / config.chunk_size.count();
  EXPECT_EQ(result.stats.chunks_total, static_cast<int>(expected_chunks));
}

INSTANTIATE_TEST_SUITE_P(
    ChunkAndStreams, TransferMatrix,
    ::testing::Combine(::testing::Values<std::int64_t>(256, 1024, 4096, 16384),
                       ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// Estimator invariants across kinds and seeds: mean within observed range,
// stddev non-negative and bounded by the range.
// ---------------------------------------------------------------------------

class EstimatorBounds
    : public ::testing::TestWithParam<std::tuple<monitor::EstimatorKind, std::uint64_t>> {
};

TEST_P(EstimatorBounds, MeanStaysWithinObservedRange) {
  const auto [kind, seed] = GetParam();
  auto estimator = monitor::make_estimator(kind, monitor::EstimatorConfig{});
  Rng rng(seed);
  double lo = 1e300;
  double hi = -1e300;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(1.0, 25.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    estimator->add_sample(SimTime::epoch() + SimDuration::minutes(i), v);
    EXPECT_GE(estimator->mean(), lo - 1e-9);
    EXPECT_LE(estimator->mean(), hi + 1e-9);
    EXPECT_GE(estimator->stddev(), 0.0);
    EXPECT_LE(estimator->stddev(), (hi - lo) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, EstimatorBounds,
    ::testing::Combine(::testing::Values(monitor::EstimatorKind::kLastSample,
                                         monitor::EstimatorKind::kLinear,
                                         monitor::EstimatorKind::kWeighted),
                       ::testing::Values(3u, 17u, 4242u)));

// ---------------------------------------------------------------------------
// Planner invariants across budgets: node budget respected, inventory never
// overdrawn, predicted throughput monotone in budget.
// ---------------------------------------------------------------------------

class PlannerBudgets : public ::testing::TestWithParam<int> {};

TEST_P(PlannerBudgets, PlanStaysFeasible) {
  const int budget = GetParam();
  monitor::ThroughputMatrix m;
  Rng rng(5);
  for (Region a : cloud::kAllRegions) {
    for (Region b : cloud::kAllRegions) {
      if (a == b) continue;
      m.links[cloud::region_index(a)][cloud::region_index(b)] =
          monitor::LinkEstimate{rng.uniform(2.0, 12.0), 0.5, 20};
    }
  }
  sched::Inventory inventory;
  inventory.fill(4);
  sched::MultiPathPlanner planner;
  const auto plan =
      planner.plan(m, Region::kNorthEU, Region::kNorthUS, inventory, budget);

  EXPECT_LE(plan.nodes_used, budget);
  // Recompute inventory usage from the plan itself.
  std::array<int, cloud::kRegionCount> used{};
  bool first_lane = true;
  for (const auto& p : plan.paths) {
    for (int w = 0; w < p.width; ++w) {
      if (!first_lane) ++used[cloud::region_index(p.route.regions.front())];
      first_lane = false;
      for (std::size_t i = 1; i + 1 < p.route.regions.size(); ++i) {
        ++used[cloud::region_index(p.route.regions[i])];
      }
    }
  }
  for (Region r : cloud::kAllRegions) {
    EXPECT_LE(used[cloud::region_index(r)], inventory[cloud::region_index(r)])
        << cloud::region_name(r);
  }
  // Paths never repeat an intermediate region.
  for (const auto& p : plan.paths) {
    for (std::size_t i = 0; i < p.route.regions.size(); ++i) {
      for (std::size_t j = i + 1; j < p.route.regions.size(); ++j) {
        EXPECT_NE(p.route.regions[i], p.route.regions[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, PlannerBudgets,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Tradeoff solver invariants across sizes and throughputs.
// ---------------------------------------------------------------------------

class SolverSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SolverSweep, FrontierIsMonotone) {
  const auto [gb, mbps] = GetParam();
  const model::CostModel model(cloud::PricingModel{}, model::ModelParams{});
  const model::TradeoffSolver solver(model);
  model::TradeoffInputs inputs;
  inputs.size = Bytes::gb(gb);
  inputs.link = monitor::LinkEstimate{mbps, mbps * 0.1, 30};
  inputs.max_nodes = 12;
  const auto frontier = solver.frontier(inputs);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LT(frontier[i].time, frontier[i - 1].time);
    // Monotone up to integer micro-USD truncation of the two cost shares.
    EXPECT_GE(frontier[i].vm_cost() + Money::micro_usd(8), frontier[i - 1].vm_cost());
    EXPECT_EQ(frontier[i].egress_cost, frontier[i - 1].egress_cost);
  }
  // resolve() output always lies on the frontier and satisfies caps when
  // feasible.
  model::Tradeoff t;
  t.budget = frontier[frontier.size() / 2].total_cost();
  const auto e = solver.resolve(inputs, t);
  EXPECT_LE(e.total_cost(), t.budget);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRates, SolverSweep,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(2.0, 5.0, 20.0)));

}  // namespace
}  // namespace sage
