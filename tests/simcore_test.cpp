// Tests for the discrete-event simulation kernel.
#include "simcore/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "common/callback.hpp"
#include "common/check.hpp"

namespace sage::sim {
namespace {

// -- InlineCallback (the SimEngine::Callback type) ---------------------------

TEST(InlineCallbackTest, DefaultIsEmptyAndComparesToNullptr) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_TRUE(cb == nullptr);
  EXPECT_FALSE(cb != nullptr);
  EXPECT_FALSE(cb.is_inline());
}

TEST(InlineCallbackTest, SmallCapturesStayInline) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, OversizedCapturesSpillToHeapAndStillRun) {
  std::array<long, 16> big{};  // 128 bytes of capture > kInlineSize
  big[7] = 42;
  long seen = 0;
  InlineCallback cb([big, &seen] { seen = big[7]; });
  static_assert(sizeof(big) > InlineCallback::kInlineSize);
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(InlineCallbackTest, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  InlineCallback a([&hits] { ++hits; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: post-move state is specified
  EXPECT_FALSE(a.is_inline());
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_TRUE(b.is_inline());
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveOnlyCapturesAreSchedulable) {
  // The whole point of dropping std::function: a callback owning a moved-in
  // unique_ptr payload can be scheduled directly.
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  InlineCallback cb([p = std::move(payload), &seen] { seen = *p; });
  cb();
  EXPECT_EQ(seen, 7);

  SimEngine engine;
  auto p2 = std::make_unique<int>(11);
  engine.schedule_after(SimDuration::seconds(1), [p = std::move(p2), &seen] {
    seen = *p;
  });
  engine.run();
  EXPECT_EQ(seen, 11);
}

TEST(InlineCallbackTest, ResetAndNullAssignDestroyTheCapture) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
    Probe(std::shared_ptr<int> c) : c(std::move(c)) {}
    Probe(Probe&&) noexcept = default;
    void operator()() {}
  };
  {
    InlineCallback cb{Probe{counter}};
    EXPECT_EQ(*counter, 0);  // moved-from temporary's husk holds no pointer
    cb.reset();
    EXPECT_EQ(*counter, 1) << "reset must run the capture's destructor";
    EXPECT_TRUE(cb == nullptr);
  }
  InlineCallback cb2{Probe{counter}};
  cb2 = nullptr;
  EXPECT_EQ(*counter, 2);
  EXPECT_EQ(counter.use_count(), 1) << "no leaked capture copies";
}

TEST(SimEngineTest, FiresInTimestampOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_after(SimDuration::seconds(3), [&] { order.push_back(3); });
  engine.schedule_after(SimDuration::seconds(1), [&] { order.push_back(1); });
  engine.schedule_after(SimDuration::seconds(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now().to_seconds(), 3.0);
}

TEST(SimEngineTest, EqualTimestampsFireFifo) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_after(SimDuration::seconds(1), [&, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngineTest, ClockAdvancesOnlyThroughEvents) {
  SimEngine engine;
  EXPECT_EQ(engine.now(), SimTime::epoch());
  SimTime seen;
  engine.schedule_after(SimDuration::minutes(5), [&] { seen = engine.now(); });
  engine.run();
  EXPECT_EQ(seen, SimTime::epoch() + SimDuration::minutes(5));
}

TEST(SimEngineTest, NestedSchedulingWorks) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_after(SimDuration::seconds(1), [&] {
    ++fired;
    engine.schedule_after(SimDuration::seconds(1), [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now().to_seconds(), 2.0);
}

TEST(SimEngineTest, CancelPreventsFiring) {
  SimEngine engine;
  bool fired = false;
  EventHandle h = engine.schedule_after(SimDuration::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(SimEngineTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(SimEngineTest, HandleNotPendingAfterFiring) {
  SimEngine engine;
  EventHandle h = engine.schedule_after(SimDuration::seconds(1), [] {});
  engine.run();
  EXPECT_FALSE(h.pending());
}

TEST(SimEngineTest, StaleHandleDoesNotCancelReusedSlot) {
  SimEngine engine;
  int fired = 0;
  EventHandle a = engine.schedule_after(SimDuration::seconds(1), [&] { fired += 1; });
  a.cancel();
  // The freed slot is recycled by the next event; the stale handle must see
  // the generation mismatch and stay inert.
  EventHandle b = engine.schedule_after(SimDuration::seconds(2), [&] { fired += 10; });
  a.cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  engine.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimEngineTest, HandleOfFiredEventDoesNotCancelReusedSlot) {
  SimEngine engine;
  int fired = 0;
  EventHandle a = engine.schedule_after(SimDuration::seconds(1), [&] { fired += 1; });
  engine.run();
  EventHandle b = engine.schedule_after(SimDuration::seconds(1), [&] { fired += 10; });
  a.cancel();  // a's slot now belongs to b
  EXPECT_TRUE(b.pending());
  engine.run();
  EXPECT_EQ(fired, 11);
}

TEST(SimEngineTest, CancelledEventsDropLazilyFromHeap) {
  SimEngine engine;
  EventHandle h = engine.schedule_after(SimDuration::seconds(1), [] {});
  EXPECT_EQ(engine.pending_events(), 1u);
  h.cancel();
  // The heap entry stays until it surfaces; it must not fire or count.
  EXPECT_EQ(engine.pending_events(), 1u);
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_TRUE(engine.empty());
}

TEST(SimEngineTest, LiveEventsExcludesCancelledHusks) {
  SimEngine engine;
  EventHandle a = engine.schedule_after(SimDuration::seconds(1), [] {});
  EventHandle b = engine.schedule_after(SimDuration::seconds(2), [] {});
  EXPECT_EQ(engine.live_events(), 2u);
  a.cancel();
  // The husk still sits in the heap but no longer counts as live work.
  EXPECT_EQ(engine.pending_events(), 2u);
  EXPECT_EQ(engine.live_events(), 1u);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(engine.live_events(), 0u);
  (void)b;
}

TEST(SimEngineTest, RunUntilStopsAtHorizon) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_after(SimDuration::seconds(1), [&] { ++fired; });
  engine.schedule_after(SimDuration::seconds(10), [&] { ++fired; });
  const auto n = engine.run_until(SimTime::epoch() + SimDuration::seconds(5));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  // The clock lands exactly on the horizon even with pending future work.
  EXPECT_EQ(engine.now().to_seconds(), 5.0);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, SchedulingInThePastThrows) {
  SimEngine engine;
  engine.schedule_after(SimDuration::seconds(5), [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(SimTime::epoch(), [] {}), CheckFailure);
  EXPECT_THROW(
      engine.schedule_after(SimDuration::zero() - SimDuration::seconds(1), [] {}),
      CheckFailure);
}

TEST(SimEngineTest, StepFiresExactlyOne) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_after(SimDuration::seconds(1), [&] { ++fired; });
  engine.schedule_after(SimDuration::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, CountsFiredEvents) {
  SimEngine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_after(SimDuration::seconds(i + 1), [] {});
  engine.run();
  EXPECT_EQ(engine.events_fired(), 7u);
}

TEST(PeriodicTaskTest, FiresAtInterval) {
  SimEngine engine;
  int fired = 0;
  PeriodicTask task(engine, SimDuration::seconds(10), [&] { ++fired; });
  task.start();
  engine.run_until(SimTime::epoch() + SimDuration::seconds(35));
  EXPECT_EQ(fired, 3);  // t = 10, 20, 30
}

TEST(PeriodicTaskTest, StopHalts) {
  SimEngine engine;
  int fired = 0;
  PeriodicTask task(engine, SimDuration::seconds(10), [&] { ++fired; });
  task.start();
  engine.run_until(SimTime::epoch() + SimDuration::seconds(25));
  task.stop();
  engine.run_until(SimTime::epoch() + SimDuration::minutes(10));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, CallbackMayStopItself) {
  SimEngine engine;
  int fired = 0;
  PeriodicTask task(engine, SimDuration::seconds(1), [&] {
    if (++fired == 3) task.stop();
  });
  task.start();
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTaskTest, DestructorCancels) {
  SimEngine engine;
  int fired = 0;
  {
    PeriodicTask task(engine, SimDuration::seconds(1), [&] { ++fired; });
    task.start();
  }
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTaskTest, RestartAfterStop) {
  SimEngine engine;
  int fired = 0;
  PeriodicTask task(engine, SimDuration::seconds(1), [&] { ++fired; });
  task.start();
  engine.run_until(SimTime::epoch() + SimDuration::seconds(2));
  task.stop();
  task.start();
  engine.run_until(SimTime::epoch() + SimDuration::seconds(4));
  EXPECT_EQ(fired, 4);
}

}  // namespace
}  // namespace sage::sim
