// Tests for the multi-datacenter multi-path planner (Algorithm-1
// reconstruction).
#include "sched/multipath.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace sage::sched {
namespace {

using cloud::Region;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;
constexpr Region kEUS = Region::kEastUS;
constexpr Region kSUS = Region::kSouthUS;

void set_link(monitor::ThroughputMatrix& m, Region a, Region b, double mbps) {
  m.set(a, b, monitor::LinkEstimate{mbps, 0.0, 10});
}

Inventory inventory_of(int per_region) {
  Inventory inv{};
  inv.fill(per_region);
  return inv;
}

TEST(PlannerMathTest, PathThroughputIsGeometricSum) {
  PlannerParams params;
  params.node_gain_decay = 0.5;
  MultiPathPlanner planner(params);
  EXPECT_DOUBLE_EQ(planner.path_throughput(8.0, 1), 8.0);
  EXPECT_DOUBLE_EQ(planner.path_throughput(8.0, 2), 12.0);
  EXPECT_DOUBLE_EQ(planner.path_throughput(8.0, 3), 14.0);
  EXPECT_DOUBLE_EQ(planner.marginal_throughput(8.0, 1), 8.0);
  EXPECT_DOUBLE_EQ(planner.marginal_throughput(8.0, 2), 4.0);
  EXPECT_DOUBLE_EQ(planner.marginal_throughput(8.0, 3), 2.0);
}

TEST(PlannerMathTest, DecayOneIsLinear) {
  PlannerParams params;
  params.node_gain_decay = 1.0;
  MultiPathPlanner planner(params);
  EXPECT_DOUBLE_EQ(planner.path_throughput(5.0, 4), 20.0);
  EXPECT_DOUBLE_EQ(planner.marginal_throughput(5.0, 4), 5.0);
}

TEST(PlannerTest, EmptyMatrixYieldsEmptyPlan) {
  MultiPathPlanner planner;
  const auto plan = planner.plan(monitor::ThroughputMatrix{}, kNEU, kNUS,
                                 inventory_of(4), 8);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.nodes_used, 0);
}

TEST(PlannerTest, SingleNodeBudgetUsesDirectSource) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 5.0);
  MultiPathPlanner planner;
  const auto plan = planner.plan(m, kNEU, kNUS, inventory_of(4), 1);
  ASSERT_EQ(plan.paths.size(), 1u);
  EXPECT_TRUE(plan.paths[0].route.is_direct());
  EXPECT_EQ(plan.paths[0].width, 1);
  EXPECT_EQ(plan.nodes_used, 1);
  EXPECT_DOUBLE_EQ(plan.total_mbps, 5.0);
}

TEST(PlannerTest, BudgetWidensTheDirectPathFirst) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 5.0);
  // A clearly worse alternative exists.
  set_link(m, kNEU, kEUS, 1.0);
  set_link(m, kEUS, kNUS, 1.0);
  MultiPathPlanner planner;
  const auto plan = planner.plan(m, kNEU, kNUS, inventory_of(8), 4);
  ASSERT_GE(plan.paths.size(), 1u);
  EXPECT_TRUE(plan.paths[0].route.is_direct());
  EXPECT_GE(plan.paths[0].width, 3);
  EXPECT_LE(plan.nodes_used, 4);
}

TEST(PlannerTest, OpensSecondPathWhenMarginalGainDrops) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 5.0);
  // A strong two-hop alternative via East US.
  set_link(m, kNEU, kEUS, 6.0);
  set_link(m, kEUS, kNUS, 10.0);
  PlannerParams params;
  params.node_gain_decay = 0.5;  // widening pays off quickly less and less
  MultiPathPlanner planner(params);
  const auto plan = planner.plan(m, kNEU, kNUS, inventory_of(8), 10);
  ASSERT_GE(plan.paths.size(), 2u);
  // The budget is spent across a relay path AND the direct path (the relay
  // via East US is the widest and opens first; widening it decays fast, so
  // the direct link joins as the second path).
  int relay_paths = 0;
  int direct_paths = 0;
  for (const auto& p : plan.paths) {
    (p.route.is_direct() ? direct_paths : relay_paths) += 1;
  }
  EXPECT_EQ(relay_paths, 1);
  EXPECT_EQ(direct_paths, 1);
  EXPECT_GT(plan.total_mbps, planner.path_throughput(6.0, 1));
}

TEST(PlannerTest, NeverExceedsNodeBudget) {
  monitor::ThroughputMatrix m;
  for (Region a : cloud::kAllRegions) {
    for (Region b : cloud::kAllRegions) {
      if (a != b) set_link(m, a, b, 4.0 + static_cast<double>(cloud::region_index(b)));
    }
  }
  MultiPathPlanner planner;
  for (int budget = 1; budget <= 20; ++budget) {
    const auto plan = planner.plan(m, kNEU, kNUS, inventory_of(6), budget);
    EXPECT_LE(plan.nodes_used, budget) << "budget " << budget;
    EXPECT_FALSE(plan.empty());
  }
}

TEST(PlannerTest, RespectsInventoryLimits) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 5.0);
  Inventory inv{};  // zero helpers anywhere
  MultiPathPlanner planner;
  const auto plan = planner.plan(m, kNEU, kNUS, inv, 10);
  ASSERT_EQ(plan.paths.size(), 1u);
  // Only the source VM itself: direct path at width 1.
  EXPECT_EQ(plan.paths[0].width, 1);
  EXPECT_EQ(plan.nodes_used, 1);
}

TEST(PlannerTest, ForwarderInventoryBoundsRelayPaths) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 1.0);
  set_link(m, kNEU, kEUS, 8.0);
  set_link(m, kEUS, kNUS, 8.0);
  Inventory inv{};
  inv[cloud::region_index(kEUS)] = 2;  // only two forwarders available
  inv[cloud::region_index(kNEU)] = 8;
  MultiPathPlanner planner;
  const auto plan = planner.plan(m, kNEU, kNUS, inv, 12);
  for (const auto& p : plan.paths) {
    if (!p.route.is_direct()) {
      EXPECT_LE(p.width, 2);
    }
  }
}

TEST(PlannerTest, WiderPlansPredictMoreThroughput) {
  monitor::ThroughputMatrix m;
  for (Region a : cloud::kAllRegions) {
    for (Region b : cloud::kAllRegions) {
      if (a != b) set_link(m, a, b, 5.0);
    }
  }
  MultiPathPlanner planner;
  double prev = 0.0;
  for (int budget : {1, 2, 4, 8, 16}) {
    const auto plan = planner.plan(m, kNEU, kNUS, inventory_of(8), budget);
    EXPECT_GE(plan.total_mbps, prev);
    prev = plan.total_mbps;
  }
}

TEST(PlannerTest, DirectPlanHelper) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 5.0);
  MultiPathPlanner planner;
  const auto plan = planner.direct_plan(m, kNEU, kNUS, inventory_of(2), 5);
  ASSERT_EQ(plan.paths.size(), 1u);
  EXPECT_TRUE(plan.paths[0].route.is_direct());
  EXPECT_EQ(plan.paths[0].width, 3);  // source + two helpers
}

TEST(PlannerTest, WidestSinglePathHelperRoutesAroundWeakDirect) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 1.0);
  set_link(m, kNEU, kWEU, 9.0);
  set_link(m, kWEU, kNUS, 8.0);
  MultiPathPlanner planner;
  // 4 nodes buy two width units on a one-intermediate route (sender +
  // forwarder per unit).
  const auto plan = planner.widest_single_path_plan(m, kNEU, kNUS, inventory_of(4), 4);
  ASSERT_EQ(plan.paths.size(), 1u);
  EXPECT_EQ(plan.paths[0].route.regions, (std::vector<Region>{kNEU, kWEU, kNUS}));
  EXPECT_EQ(plan.paths[0].width, 2);
  EXPECT_EQ(plan.nodes_used, 4);
}

TEST(PlannerTest, PlanDeterministicForSameInputs) {
  monitor::ThroughputMatrix m;
  for (Region a : cloud::kAllRegions) {
    for (Region b : cloud::kAllRegions) {
      if (a != b) {
        set_link(m, a, b,
                 3.0 + static_cast<double>((cloud::region_index(a) * 7 +
                                            cloud::region_index(b) * 3) %
                                           5));
      }
    }
  }
  MultiPathPlanner planner;
  const auto p1 = planner.plan(m, kNEU, kSUS, inventory_of(5), 9);
  const auto p2 = planner.plan(m, kNEU, kSUS, inventory_of(5), 9);
  ASSERT_EQ(p1.paths.size(), p2.paths.size());
  EXPECT_EQ(p1.nodes_used, p2.nodes_used);
  EXPECT_DOUBLE_EQ(p1.total_mbps, p2.total_mbps);
  for (std::size_t i = 0; i < p1.paths.size(); ++i) {
    EXPECT_EQ(p1.paths[i].route.regions, p2.paths[i].route.regions);
    EXPECT_EQ(p1.paths[i].width, p2.paths[i].width);
  }
}

TEST(PlannerTest, RejectsNonPositiveBudget) {
  MultiPathPlanner planner;
  EXPECT_THROW(planner.plan(monitor::ThroughputMatrix{}, kNEU, kNUS, inventory_of(1), 0),
               CheckFailure);
}

TEST(PlanCacheTest, HitsOnIdenticalEpochKeyMissesOnAnyChange) {
  monitor::ThroughputMatrix m;
  m.epoch = 7;
  set_link(m, kNEU, kNUS, 10.0);
  set_link(m, kNEU, kEUS, 8.0);
  set_link(m, kEUS, kNUS, 8.0);
  MultiPathPlanner planner;
  PlanCache cache;

  const MultiPathPlan& first = cache.plan(planner, m, kNEU, kNUS, inventory_of(4), 6);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const MultiPathPlan& again = cache.plan(planner, m, kNEU, kNUS, inventory_of(4), 6);
  EXPECT_EQ(cache.hits(), 1u);
  // A hit is the exact plan a fresh call would produce.
  const MultiPathPlan fresh = planner.plan(m, kNEU, kNUS, inventory_of(4), 6);
  EXPECT_TRUE(MultiPathPlanner::same_plan(again, fresh));
  EXPECT_DOUBLE_EQ(again.total_mbps, fresh.total_mbps);
  EXPECT_TRUE(MultiPathPlanner::same_plan(first, again));

  // Any component of the key differing is a miss: epoch, pair, inventory,
  // budget.
  m.epoch = 8;
  (void)cache.plan(planner, m, kNEU, kNUS, inventory_of(4), 6);
  EXPECT_EQ(cache.misses(), 2u);
  (void)cache.plan(planner, m, kNEU, kEUS, inventory_of(4), 6);
  EXPECT_EQ(cache.misses(), 3u);
  (void)cache.plan(planner, m, kNEU, kNUS, inventory_of(3), 6);
  EXPECT_EQ(cache.misses(), 4u);
  (void)cache.plan(planner, m, kNEU, kNUS, inventory_of(4), 5);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCacheTest, RingEvictionBoundsSizeAndStaysCorrect) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kNUS, 10.0);
  MultiPathPlanner planner;
  PlanCache cache(4);
  for (std::uint64_t e = 1; e <= 10; ++e) {
    m.epoch = e;
    (void)cache.plan(planner, m, kNEU, kNUS, inventory_of(4), 6);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.misses(), 10u);
  // The newest entry survived the ring and still hits.
  m.epoch = 10;
  (void)cache.plan(planner, m, kNEU, kNUS, inventory_of(4), 6);
  EXPECT_EQ(cache.hits(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace sage::sched
