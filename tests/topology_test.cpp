// Tests for the runtime-parameterized sparse topology layer: builder
// semantics, generator structural invariants, the bit-exact measured-matrix
// import that keeps the calibrated default unchanged, the int32 monitor
// pair-slot space, and a sparse-vs-dense engine differential.
#include "cloud/topology.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "core/sage.hpp"
#include "monitor/monitoring.hpp"
#include "test_util.hpp"

namespace sage::cloud {
namespace {

using sage::testing::run_until;

// BFS connectivity over the declared out-edge adjacency.
bool connected(const Topology& t) {
  const std::size_t n = t.region_count();
  std::vector<char> seen(n, 0);
  std::queue<std::size_t> q;
  q.push(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!q.empty()) {
    const Region u = make_region(q.front());
    q.pop();
    for (LinkSlot id : t.out_edges(u)) {
      const std::size_t v = region_index(t.edges()[static_cast<std::size_t>(id)].dst);
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == n;
}

double max_wan_per_flow(const Topology& t) {
  double best = 0.0;
  for (const Topology::Edge& e : t.edges()) {
    if (e.src == e.dst) continue;
    best = std::max(best, e.spec.per_flow_cap.bytes_per_second());
  }
  return best;
}

TEST(TopologyBuilderTest, BuildsSparseEdgeSpace) {
  TopologyBuilder b(3);
  const PairLinkSpec spec = wan_spec_for_latency(SimDuration::millis(20), false, true);
  b.add_link(make_region(0), make_region(0), spec);
  b.add_symmetric(make_region(0), make_region(2), spec);
  const Topology t = b.build();
  EXPECT_EQ(t.region_count(), 3u);
  EXPECT_EQ(t.edges().size(), 3u);  // diagonal + two directions
  EXPECT_TRUE(t.has_link(make_region(0), make_region(2)));
  EXPECT_TRUE(t.has_link(make_region(2), make_region(0)));
  EXPECT_FALSE(t.has_link(make_region(0), make_region(1)));
  EXPECT_FALSE(t.has_link(make_region(1), make_region(2)));
  EXPECT_EQ(t.edge_index(make_region(1), make_region(0)), kNoLink);
  // Edge ids are insertion order.
  EXPECT_EQ(t.edge_index(make_region(0), make_region(0)), 0);
  EXPECT_EQ(t.edge_index(make_region(0), make_region(2)), 1);
  EXPECT_EQ(t.edge_index(make_region(2), make_region(0)), 2);
}

TEST(TopologyBuilderTest, HasLinkTracksDeclarations) {
  TopologyBuilder b(2);
  const PairLinkSpec spec = wan_spec_for_latency(SimDuration::millis(20), false, true);
  EXPECT_FALSE(b.has_link(make_region(0), make_region(1)));
  b.add_link(make_region(0), make_region(1), spec);
  EXPECT_TRUE(b.has_link(make_region(0), make_region(1)));
  EXPECT_FALSE(b.has_link(make_region(1), make_region(0)));
}

TEST(RegionNameTest, NamedRegionsKeepHistoricalLabels) {
  EXPECT_EQ(region_name(Region::kNorthEU), "North EU");
  EXPECT_EQ(region_code(Region::kWestUS), "WUS");
}

TEST(RegionNameTest, SyntheticRegionsGetGeneratedLabels) {
  EXPECT_EQ(region_name(make_region(42)), "R042");
  EXPECT_EQ(region_code(make_region(42)), "R042");
  EXPECT_EQ(region_name(make_region(255)), "R255");
  // Interned: repeated queries return the same stable storage.
  EXPECT_EQ(region_name(make_region(77)).data(), region_name(make_region(77)).data());
}

TEST(MeasuredImportTest, RoundTripsCalibratedTableBitExactly) {
  const Topology dense = default_topology();
  const Topology imported = measured_topology(default_latency_ms());
  ASSERT_EQ(dense.region_count(), kRegionCount);
  ASSERT_EQ(imported.edges().size(), dense.edges().size());
  ASSERT_EQ(dense.edges().size(), kRegionCount * kRegionCount);
  for (std::size_t i = 0; i < dense.edges().size(); ++i) {
    const Topology::Edge& a = dense.edges()[i];
    const Topology::Edge& b = imported.edges()[i];
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    // Bit-exact: the import IS the default's constructor.
    EXPECT_EQ(a.spec.capacity.bytes_per_second(), b.spec.capacity.bytes_per_second());
    EXPECT_EQ(a.spec.per_flow_cap.bytes_per_second(),
              b.spec.per_flow_cap.bytes_per_second());
    EXPECT_EQ(a.spec.latency, b.spec.latency);
    EXPECT_EQ(a.spec.variability.noise_sigma, b.spec.variability.noise_sigma);
    EXPECT_EQ(a.spec.variability.diurnal_amplitude,
              b.spec.variability.diurnal_amplitude);
    EXPECT_EQ(a.spec.variability.incidents_per_day,
              b.spec.variability.incidents_per_day);
  }
}

TEST(MeasuredImportTest, DefaultEdgeIdsAreHistoricalRowMajorSlots) {
  const Topology t = default_topology();
  for (std::size_t a = 0; a < kRegionCount; ++a) {
    for (std::size_t b = 0; b < kRegionCount; ++b) {
      EXPECT_EQ(t.edge_index(make_region(a), make_region(b)),
                static_cast<LinkSlot>(a * kRegionCount + b));
    }
  }
}

TEST(GeneratorTest, RingOfContinentsInvariants) {
  for (const std::size_t n : {8u, 64u}) {
    const Topology t = ring_of_continents(n, 4, /*stable=*/true);
    EXPECT_EQ(t.region_count(), n);
    EXPECT_TRUE(connected(t)) << "n=" << n;
    // Sparse: far below the N^2 full mesh once N outgrows the continents.
    if (n >= 64) EXPECT_LT(t.edges().size(), n * n / 2);
    const double wan_ceiling = max_wan_per_flow(t);
    EXPECT_GT(wan_ceiling, 0.0);
    for (const Topology::Edge& e : t.edges()) {
      if (e.src == e.dst) {
        // Intra-DC at least 10x the fastest WAN path, per-flow and aggregate.
        EXPECT_GE(e.spec.per_flow_cap.bytes_per_second(), 10.0 * wan_ceiling);
        EXPECT_GE(e.spec.capacity.bytes_per_second(), 10.0 * wan_ceiling);
      } else {
        // Declared WAN pairs are symmetric with equal RTTs.
        ASSERT_TRUE(t.has_link(e.dst, e.src));
        EXPECT_EQ(t.rtt(e.src, e.dst), t.rtt(e.dst, e.src));
      }
    }
  }
}

TEST(GeneratorTest, HubAndSpokeInvariants) {
  const std::size_t n = 64;
  const Topology t = hub_and_spoke(n, /*stable=*/true);
  EXPECT_EQ(t.region_count(), n);
  EXPECT_TRUE(connected(t));
  // N diagonals + 2(N-1) spoke directions — nothing else.
  EXPECT_EQ(t.edges().size(), n + 2 * (n - 1));
  const double wan_ceiling = max_wan_per_flow(t);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_TRUE(t.has_link(make_region(0), make_region(i)));
    EXPECT_TRUE(t.has_link(make_region(i), make_region(0)));
    EXPECT_EQ(t.rtt(make_region(0), make_region(i)),
              t.rtt(make_region(i), make_region(0)));
    EXPECT_GE(t.link(make_region(i), make_region(i)).per_flow_cap.bytes_per_second(),
              10.0 * wan_ceiling);
    // Spoke-to-spoke pairs are NOT directly linked: they relay via the hub.
    if (i + 1 < n) EXPECT_FALSE(t.has_link(make_region(i), make_region(i + 1)));
  }
}

// The int16 pair-slot regression: with more than 32767 monitored pairs the
// historical std::int16_t slot table overflowed. A 200-region full mesh has
// 39800 directed WAN pairs; the monitor must index all of them correctly.
TEST(MonitorScaleTest, PairSlotsPastInt16Boundary) {
  const std::size_t n = 200;
  std::vector<std::vector<double>> lat(n, std::vector<double>(n, 50.0));
  for (std::size_t i = 0; i < n; ++i) lat[i][i] = 1.0;

  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, measured_topology(lat, /*stable=*/true), 7);
  monitor::MonitorConfig cfg;
  cfg.history_capacity = 0;
  monitor::MonitoringService svc(provider, cfg);
  for (std::size_t i = 0; i < n; ++i) {
    const Region r = make_region(i);
    svc.register_agent(r, provider.provision(r, VmSize::kSmall).id);
  }
  // Every directed pair is monitored; the last one's links_ index (39799)
  // is far past the int16 range.
  const Region hi_src = make_region(n - 2);
  const Region hi_dst = make_region(n - 1);
  ASSERT_NE(svc.link_estimator(hi_src, hi_dst), nullptr);
  ASSERT_NE(svc.link_estimator(hi_dst, hi_src), nullptr);
  svc.report_transfer_observation(hi_src, hi_dst, ByteRate::mb_per_sec(7.0));
  const monitor::LinkEstimate est = svc.estimate(hi_src, hi_dst);
  ASSERT_TRUE(est.ready());
  EXPECT_NEAR(est.mean_mbps, 7.0, 1e-9);
  // And the sparse snapshot resolves the same high-index pair.
  const monitor::ThroughputMatrix& m = svc.snapshot();
  EXPECT_NEAR(m.at(hi_src, hi_dst).mean_mbps, 7.0, 1e-9);
  EXPECT_FALSE(m.at(make_region(0), make_region(1)).ready());
}

// Sparse-vs-dense differential: the same engine scenario replayed on the
// default calibrated topology and on a TopologyBuilder reconstruction of it
// must be event-for-event identical — completion times, lanes, replans.
TEST(SparseDenseDifferentialTest, EngineScenarioIsIdentical) {
  struct Run {
    std::vector<double> finish_s;
    std::vector<int> lanes;
    std::vector<int> replans;
  };
  const auto scenario = [](Topology topology) {
    sim::SimEngine engine;
    cloud::CloudProvider provider(engine, std::move(topology), 42);
    core::SageConfig config;
    config.regions = {Region::kNorthEU, Region::kWestEU, Region::kNorthUS,
                      Region::kEastUS};
    config.helpers_per_region = 3;
    config.monitoring.probe_interval = SimDuration::minutes(1);
    core::SageEngine sage(provider, config);
    sage.deploy();
    engine.run_until(engine.now() + SimDuration::minutes(20));

    Run run;
    int pending = 0;
    for (const Bytes size : {Bytes::mb(80), Bytes::mb(40), Bytes::mb(120)}) {
      ++pending;
      sage.send(Region::kNorthEU, Region::kNorthUS, size,
                [&](const stream::SendOutcome& o) {
                  EXPECT_TRUE(o.ok);
                  --pending;
                });
    }
    EXPECT_TRUE(run_until(engine, [&] { return pending == 0; }, SimDuration::hours(12)));
    for (const core::SendRecord& rec : sage.history()) {
      run.finish_s.push_back(rec.elapsed.to_seconds());
      run.lanes.push_back(rec.lanes_used);
      run.replans.push_back(rec.replans);
    }
    sage.shutdown();
    return run;
  };

  const Topology dense = default_topology();
  TopologyBuilder rebuild(dense.region_count());
  for (const Topology::Edge& e : dense.edges()) rebuild.add_link(e.src, e.dst, e.spec);

  const Run a = scenario(default_topology());
  const Run b = scenario(rebuild.build());
  ASSERT_EQ(a.finish_s.size(), 3u);
  EXPECT_EQ(a.finish_s, b.finish_s);
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.replans, b.replans);
}

}  // namespace
}  // namespace sage::cloud
