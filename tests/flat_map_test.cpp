// Tests for the open-addressing FlatMap backing the keyed operator state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"

namespace sage {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);
  m[7] = 42;
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 42);
  EXPECT_TRUE(m.contains(7));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_FALSE(m.contains(7));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMapTest, FindOrInsertReportsInsertion) {
  FlatMap<double> m;
  auto [p1, fresh1] = m.find_or_insert(3);
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(*p1, 0.0);
  *p1 = 1.5;
  auto [p2, fresh2] = m.find_or_insert(3);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(*p2, 1.5);
}

TEST(FlatMapTest, RecycledSlotsStartFresh) {
  FlatMap<std::vector<int>> m;
  m[1].push_back(9);
  m.clear();
  // Re-inserting the same key after clear must see a default value, not the
  // parked storage's old contents.
  auto [v, fresh] = m.find_or_insert(1);
  EXPECT_TRUE(fresh);
  EXPECT_TRUE(v->empty());
}

TEST(FlatMapTest, GrowthUnderMillionInserts) {
  // Single-session skew torture: a million keys, every one checked back.
  FlatMap<std::uint64_t> m;
  constexpr std::uint64_t kN = 1'000'000;
  for (std::uint64_t k = 0; k < kN; ++k) m[k * 2654435761ULL] = k;
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t* v = m.find(k * 2654435761ULL);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatMapTest, SingleKeySkew) {
  // The degenerate hot-key case: one key hammered a million times must not
  // grow the table or disturb the value.
  FlatMap<std::uint64_t> m;
  for (int i = 0; i < 1'000'000; ++i) *m.find_or_insert(77).first += 1;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(77), 1'000'000u);
  EXPECT_LE(m.capacity(), 16u);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderChurn) {
  // Randomized differential test against std::unordered_map, with enough
  // erases to exercise backward-shift deletion inside probe clusters.
  FlatMap<int> m;
  std::unordered_map<std::uint64_t, int> ref;
  Rng rng(123);
  for (int step = 0; step < 200'000; ++step) {
    // Small key domain forces collisions and long probe chains.
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 512));
    const auto action = rng.uniform_int(0, 3);
    if (action == 0) {
      EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
    } else {
      m[key] = static_cast<int>(step);
      ref[key] = step;
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const int* got = m.find(k);
    ASSERT_NE(got, nullptr) << "key " << k;
    EXPECT_EQ(*got, v);
  }
  std::size_t visited = 0;
  m.for_each([&](std::uint64_t k, int v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(it->second, v);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMapTest, ClearRetainsCapacity) {
  FlatMap<int> m;
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = 1;
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = 2;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  EXPECT_GE(cap * 3, 1000u * 4 / 2);  // sized for load factor < 3/4
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMapTest, DeterministicIterationOrder) {
  // Same insert/erase sequence -> same slot order, twice over.
  auto build = [] {
    FlatMap<int> m;
    for (std::uint64_t k = 100; k > 0; --k) m[k * 31] = static_cast<int>(k);
    for (std::uint64_t k = 1; k <= 100; k += 3) m.erase(k * 31);
    std::vector<std::uint64_t> order;
    m.for_each([&](std::uint64_t key, int) { order.push_back(key); });
    return order;
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace sage
