// Operator fusion: graph-rewrite rules and the runtime equivalence
// guarantee — a fused pipeline must produce byte-identical sink output and
// identical timing to the unfused one (the executor models fused chains
// stage by stage precisely so that fusion is invisible to simulated
// results).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stream/graph.hpp"
#include "stream/operator.hpp"
#include "stream/runtime.hpp"
#include "test_util.hpp"

namespace sage::stream {
namespace {

using cloud::Region;
using sage::testing::NoisyWorld;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kNUS = Region::kNorthUS;

std::shared_ptr<Operator> scale_op() {
  return make_map("scale", [](const Record& r) {
    Record o = r;
    o.value = r.value * 2.0 + 0.5;
    return o;
  });
}

std::shared_ptr<Operator> pos_filter() {
  return make_filter("pos", [](const Record& r) { return r.value > 0.0; });
}

// ---------------------------------------------------------------------------
// Graph rewriting.
// ---------------------------------------------------------------------------

TEST(FuseGraphTest, CollapsesLinearStatelessRuns) {
  JobGraph g;
  const auto src = g.add_source("s", kNEU, SourceSpec{});
  const auto a = g.add_operator("a", kNEU, scale_op());
  const auto b = g.add_operator("b", kNEU, pos_filter());
  const auto c = g.add_operator("c", kNEU, scale_op());
  const auto sink = g.add_sink("k", kNEU);
  g.connect(src, a);
  g.connect(a, b);
  g.connect(b, c);
  g.connect(c, sink);

  EXPECT_EQ(g.fuse_stateless_chains(), 2u);
  // Ids survive: the sink and the head of the chain are where they were.
  EXPECT_EQ(g.vertices().size(), 5u);
  EXPECT_EQ(g.edges().size(), 2u);
  const auto* fused = dynamic_cast<FusedStatelessChain*>(g.vertex(a).op.get());
  ASSERT_NE(fused, nullptr);
  EXPECT_EQ(fused->stage_count(), 3u);
  // Chain cost is the sum of its stages' costs (map 1.0 + filter 0.5 + map 1.0).
  EXPECT_DOUBLE_EQ(fused->cost_per_record(), 2.5);
  // The graph still validates; orphaned vertices b, c are inert.
  g.validate();
  EXPECT_TRUE(g.out_edges(b).empty());
  EXPECT_TRUE(g.out_edges(c).empty());
}

TEST(FuseGraphTest, StatefulOperatorsBreakTheChain) {
  JobGraph g;
  const auto src = g.add_source("s", kNEU, SourceSpec{});
  const auto a = g.add_operator("a", kNEU, scale_op());
  const auto w = g.add_operator("w", kNEU,
                                make_window_aggregate("sum", SimDuration::seconds(1),
                                                      AggregateFn::kSum));
  const auto b = g.add_operator("b", kNEU, scale_op());
  const auto sink = g.add_sink("k", kNEU);
  g.connect(src, a);
  g.connect(a, w);
  g.connect(w, b);
  g.connect(b, sink);
  // Nothing adjacent is stateless-stateless, so nothing fuses.
  EXPECT_EQ(g.fuse_stateless_chains(), 0u);
  EXPECT_EQ(g.edges().size(), 4u);
}

TEST(FuseGraphTest, FanOutAndFanInBlockFusion) {
  JobGraph g;
  const auto src = g.add_source("s", kNEU, SourceSpec{});
  const auto a = g.add_operator("a", kNEU, scale_op());
  const auto b = g.add_operator("b", kNEU, pos_filter());
  const auto c = g.add_operator("c", kNEU, pos_filter());
  const auto sink1 = g.add_sink("k1", kNEU);
  const auto sink2 = g.add_sink("k2", kNEU);
  g.connect(src, a);
  g.connect(a, b);  // a fans out to b and c: a->b must not fuse
  g.connect(a, c);
  g.connect(b, sink1);
  g.connect(c, sink2);
  EXPECT_EQ(g.fuse_stateless_chains(), 0u);
}

TEST(FuseGraphTest, CrossSiteEdgesNeverFuse) {
  JobGraph g;
  const auto src = g.add_source("s", kNEU, SourceSpec{});
  const auto a = g.add_operator("a", kNEU, scale_op());
  const auto b = g.add_operator("b", kNUS, pos_filter());
  const auto sink = g.add_sink("k", kNUS);
  g.connect(src, a);
  g.connect(a, b);
  g.connect(b, sink);
  EXPECT_EQ(g.fuse_stateless_chains(), 0u);
}

TEST(FusedChainTest, MatchesPerOperatorSemantics) {
  std::vector<StatelessStage> stages;
  ASSERT_TRUE(scale_op()->collect_stages(stages));
  ASSERT_TRUE(pos_filter()->collect_stages(stages));
  FusedStatelessChain chain("f", std::move(stages));

  RecordBatch in;
  for (double v : {-3.0, -0.25, 0.0, 1.0, 4.0}) {
    Record r;
    r.value = v;
    r.wire_size = Bytes::of(64);
    in.add(r);
  }
  // Reference: run the operators one by one.
  RecordBatch mid;
  RecordBatch want;
  scale_op()->process(0, in, mid);
  pos_filter()->process(0, mid, want);

  RecordBatch got_copy;
  chain.process(0, in, got_copy);
  RecordBatch got_owned;
  RecordBatch owned_in = in;
  chain.process_batch(0, std::move(owned_in), got_owned);

  for (const RecordBatch* got : {&got_copy, &got_owned}) {
    ASSERT_EQ(got->size(), want.size());
    EXPECT_EQ(got->wire_size(), want.wire_size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(got->row(i).value, want.row(i).value);
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime equivalence: fused vs unfused must be indistinguishable at the
// sink — identical record streams, identical timing — even with CPU-factor
// noise active. The pipeline is deliberately underloaded: head-of-line
// batch overlap is the one regime where fusion may reorder work.
// ---------------------------------------------------------------------------

struct SinkCapture {
  std::vector<Record> records;
};

struct PipelineRun {
  std::uint64_t records = 0;
  Bytes bytes;
  std::vector<double> latency_ms;
  std::vector<Record> captured;
};

/// Never used: the job is single-site.
struct NeverBackend final : TransferBackend {
  void send(Region, Region, Bytes, DoneFn) override { FAIL() << "unexpected WAN send"; }
  [[nodiscard]] std::string_view name() const override { return "never"; }
};

PipelineRun run_pipeline(bool fuse, bool soa = soa_kernels_enabled()) {
  const bool prev_soa = soa_kernels_enabled();
  set_soa_kernels_enabled(soa);
  NoisyWorld world(/*seed=*/7);
  SinkCapture capture;

  JobGraph g;
  SourceSpec spec;
  spec.records_per_sec = 2000.0;
  spec.key_count = 64;
  spec.key_skew = 1.1;
  spec.value_stddev = 2.0;
  const auto src = g.add_source("s", kNEU, spec);
  const auto a = g.add_operator("a", kNEU, scale_op());
  const auto b = g.add_operator("b", kNEU, pos_filter());
  const auto c = g.add_operator("c", kNEU, make_map("tap", [&capture](const Record& r) {
                                  capture.records.push_back(r);
                                  return r;
                                }));
  const auto sink = g.add_sink("k", kNEU);
  g.connect(src, a);
  g.connect(a, b);
  g.connect(b, c);
  g.connect(c, sink);

  NeverBackend backend;
  RuntimeConfig cfg;
  cfg.seed = 99;
  cfg.fuse_stateless_chains = fuse;
  StreamRuntime runtime(*world.provider, std::move(g), backend, cfg);
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(10));
  runtime.stop();

  PipelineRun out;
  out.records = runtime.sink_stats(sink).records;
  out.bytes = runtime.sink_stats(sink).bytes;
  out.latency_ms = runtime.sink_stats(sink).latency_ms.values();
  out.captured = std::move(capture.records);
  set_soa_kernels_enabled(prev_soa);
  return out;
}

void expect_identical(const PipelineRun& x, const PipelineRun& y) {
  EXPECT_EQ(x.records, y.records);
  EXPECT_EQ(x.bytes, y.bytes);
  // Timing must match exactly (not approximately): the stage-wise executor
  // reproduces the unfused chain's per-stage delays bit for bit.
  ASSERT_EQ(x.latency_ms.size(), y.latency_ms.size());
  for (std::size_t i = 0; i < x.latency_ms.size(); ++i) {
    ASSERT_EQ(x.latency_ms[i], y.latency_ms[i]) << "latency sample " << i;
  }
  ASSERT_EQ(x.captured.size(), y.captured.size());
  for (std::size_t i = 0; i < x.captured.size(); ++i) {
    const Record& r = x.captured[i];
    const Record& s = y.captured[i];
    ASSERT_EQ(r.event_time, s.event_time) << "record " << i;
    ASSERT_EQ(r.key, s.key) << "record " << i;
    ASSERT_EQ(r.value, s.value) << "record " << i;
    ASSERT_EQ(r.wire_size, s.wire_size) << "record " << i;
  }
}

TEST(FusionEquivalenceTest, FusedMatchesUnfusedExactly) {
  const PipelineRun unfused = run_pipeline(false);
  const PipelineRun fused = run_pipeline(true);
  ASSERT_GT(unfused.records, 0u);
  ASSERT_GT(unfused.captured.size(), 0u);
  expect_identical(unfused, fused);
}

TEST(FusionEquivalenceTest, FusedRunsAreDeterministic) {
  const PipelineRun first = run_pipeline(true);
  const PipelineRun second = run_pipeline(true);
  ASSERT_GT(first.records, 0u);
  expect_identical(first, second);
}

// The SoA kernel path (column-wise fused stages) must be indistinguishable
// from the scalar row-at-a-time path — same records, same timing — in both
// fused and unfused pipelines.
TEST(FusionEquivalenceTest, SoaKernelsMatchScalarExactly) {
  const PipelineRun scalar = run_pipeline(true, /*soa=*/false);
  const PipelineRun kernels = run_pipeline(true, /*soa=*/true);
  ASSERT_GT(scalar.records, 0u);
  expect_identical(scalar, kernels);
  const PipelineRun scalar_unfused = run_pipeline(false, /*soa=*/false);
  const PipelineRun kernels_unfused = run_pipeline(false, /*soa=*/true);
  expect_identical(scalar_unfused, kernels_unfused);
}

// Column kernels built by the value/key factories compute the same survivors
// and the same wire accounting as their scalar twins, stage by stage.
TEST(FusedChainTest, ColumnKernelsMatchScalarApply) {
  std::vector<StatelessStage> stages;
  ASSERT_TRUE(make_value_map("scale", [](double v) { return v * 1.5 + 0.25; })
                  ->collect_stages(stages));
  ASSERT_TRUE(make_value_filter("pos", [](double v) { return v > -1.0; })
                  ->collect_stages(stages));
  ASSERT_TRUE(make_key_filter("mod", [](std::uint64_t k) { return k % 3 != 0; })
                  ->collect_stages(stages));
  FusedStatelessChain chain("f", std::move(stages));

  RecordBatch in;
  for (int i = 0; i < 32; ++i) {
    Record r;
    r.key = static_cast<std::uint64_t>(i * 7 % 11);
    r.value = static_cast<double>(i) - 16.0;
    r.wire_size = Bytes::of(48 + i);
    in.add(r);
  }
  RecordBatch scalar = in;
  RecordBatch columnar = in;
  for (std::size_t s = 0; s < chain.stage_count(); ++s) {
    chain.apply_stage(s, scalar, /*use_kernel=*/false);
    chain.apply_stage(s, columnar, /*use_kernel=*/true);
    ASSERT_EQ(scalar.size(), columnar.size()) << "stage " << s;
    EXPECT_EQ(scalar.wire_size(), columnar.wire_size()) << "stage " << s;
  }
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    const Record a = scalar.row(i);
    const Record b = columnar.row(i);
    ASSERT_EQ(a.event_time, b.event_time);
    ASSERT_EQ(a.key, b.key);
    ASSERT_EQ(a.value, b.value);
    ASSERT_EQ(a.wire_size, b.wire_size);
  }
}

}  // namespace
}  // namespace sage::stream
