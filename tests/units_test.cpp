// Unit tests for the typed units layer (common/units.hpp).
#include "common/units.hpp"

#include <gtest/gtest.h>

namespace sage {
namespace {

TEST(SimDurationTest, ConstructorsAgree) {
  EXPECT_EQ(SimDuration::seconds(1.0).count_micros(), 1'000'000);
  EXPECT_EQ(SimDuration::millis(5).count_micros(), 5'000);
  EXPECT_EQ(SimDuration::minutes(2).count_micros(), 120'000'000);
  EXPECT_EQ(SimDuration::hours(1).count_micros(), 3'600'000'000LL);
  EXPECT_EQ(SimDuration::days(1), SimDuration::hours(24));
}

TEST(SimDurationTest, Arithmetic) {
  const auto a = SimDuration::seconds(10);
  const auto b = SimDuration::seconds(4);
  EXPECT_EQ((a + b).to_seconds(), 14.0);
  EXPECT_EQ((a - b).to_seconds(), 6.0);
  EXPECT_DOUBLE_EQ((a * 2.5).to_seconds(), 25.0);
  EXPECT_DOUBLE_EQ((a / 4.0).to_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimDurationTest, ComparisonAndFlags) {
  EXPECT_LT(SimDuration::seconds(1), SimDuration::seconds(2));
  EXPECT_TRUE(SimDuration::zero().is_zero());
  EXPECT_TRUE((SimDuration::zero() - SimDuration::seconds(1)).is_negative());
  EXPECT_FALSE(SimDuration::seconds(1).is_negative());
}

TEST(SimTimeTest, TimePointArithmetic) {
  const SimTime t0 = SimTime::epoch();
  const SimTime t1 = t0 + SimDuration::seconds(30);
  EXPECT_EQ((t1 - t0).to_seconds(), 30.0);
  EXPECT_EQ(t1 - SimDuration::seconds(30), t0);
  EXPECT_GT(t1, t0);
  EXPECT_DOUBLE_EQ((t0 + SimDuration::hours(2)).to_hours(), 2.0);
}

TEST(BytesTest, UnitsAreDecimal) {
  EXPECT_EQ(Bytes::kb(1).count(), 1000);
  EXPECT_EQ(Bytes::mb(1).count(), 1'000'000);
  EXPECT_EQ(Bytes::gb(1).count(), 1'000'000'000);
  EXPECT_EQ(Bytes::kib(1).count(), 1024);
  EXPECT_EQ(Bytes::mib(1).count(), 1024 * 1024);
}

TEST(BytesTest, Arithmetic) {
  const auto a = Bytes::mb(10);
  const auto b = Bytes::mb(4);
  EXPECT_EQ((a + b).to_mb(), 14.0);
  EXPECT_EQ((a - b).to_mb(), 6.0);
  EXPECT_DOUBLE_EQ((a * 0.5).to_mb(), 5.0);
  EXPECT_EQ((a / 2).to_mb(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  Bytes c = a;
  c += b;
  c -= Bytes::mb(1);
  EXPECT_EQ(c, Bytes::mb(13));
}

TEST(ByteRateTest, MegabitConversion) {
  // A 100 Mbps NIC moves 12.5 MB/s.
  EXPECT_DOUBLE_EQ(ByteRate::megabits_per_sec(100).to_mb_per_sec(), 12.5);
}

TEST(ByteRateTest, TimeForSize) {
  const auto r = ByteRate::mb_per_sec(10);
  EXPECT_DOUBLE_EQ(r.time_for(Bytes::mb(100)).to_seconds(), 10.0);
  EXPECT_EQ(ByteRate::zero().time_for(Bytes::mb(1)), SimDuration::max());
}

TEST(ByteRateTest, RateFromBytesOverDuration) {
  const ByteRate r = Bytes::mb(50) / SimDuration::seconds(5);
  EXPECT_DOUBLE_EQ(r.to_mb_per_sec(), 10.0);
  // Degenerate interval yields zero, not a division crash.
  EXPECT_TRUE((Bytes::mb(1) / SimDuration::zero()).is_zero());
}

TEST(ByteRateTest, BytesFromRateOverDuration) {
  EXPECT_EQ((ByteRate::mb_per_sec(4) * SimDuration::seconds(3)).to_mb(), 12.0);
}

TEST(MoneyTest, ExactMicroUsdAccumulation) {
  Money total = Money::zero();
  for (int i = 0; i < 1'000'000; ++i) total += Money::micro_usd(1);
  EXPECT_DOUBLE_EQ(total.to_usd(), 1.0);
}

TEST(MoneyTest, Arithmetic) {
  const auto a = Money::usd(0.12);
  EXPECT_EQ(a.count_micro_usd(), 120'000);
  EXPECT_DOUBLE_EQ((a * 2.0).to_usd(), 0.24);
  EXPECT_DOUBLE_EQ((a + Money::cents(3)).to_usd(), 0.15);
  EXPECT_DOUBLE_EQ(a / Money::usd(0.06), 2.0);
  EXPECT_LT(Money::usd(0.05), a);
}

TEST(FormattingTest, HumanReadable) {
  EXPECT_EQ(to_string(Bytes::of(512)), "512 B");
  EXPECT_EQ(to_string(Bytes::mb(100)), "100.0 MB");
  EXPECT_EQ(to_string(Bytes::gb(2)), "2.00 GB");
  EXPECT_EQ(to_string(ByteRate::mb_per_sec(5.25)), "5.25 MB/s");
  EXPECT_EQ(to_string(SimDuration::seconds(90)), "90.00 s");
  EXPECT_EQ(to_string(SimDuration::hours(3)), "3.00 h");
  EXPECT_EQ(to_string(SimDuration::max()), "inf");
  EXPECT_EQ(to_string(Money::usd(1.5)), "$1.5000");
}

}  // namespace
}  // namespace sage
