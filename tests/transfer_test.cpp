// Tests for the geo-transfer substrate: chunking, lanes, relaying, acks,
// retransmission and failure recovery.
#include "net/transfer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "test_util.hpp"

namespace sage::net {
namespace {

using cloud::Region;
using cloud::VmHandle;
using cloud::VmSize;
using sage::testing::StableWorld;
using sage::testing::run_until;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kNUS = Region::kNorthUS;

struct TransferFixture : public ::testing::Test {
  StableWorld world;
  cloud::CloudProvider& provider() { return *world.provider; }

  cloud::VmId vm(Region r) { return provider().provision(r, VmSize::kSmall).id; }

  TransferResult run_transfer(Bytes size, std::vector<Lane> lanes,
                              TransferConfig config = {}) {
    TransferResult out{};
    bool done = false;
    GeoTransfer t(provider(), size, std::move(lanes), config,
                  [&](const TransferResult& r) {
                    out = r;
                    done = true;
                  });
    t.start();
    EXPECT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(12)));
    return out;
  }
};

TEST_F(TransferFixture, DirectTransferDelivisAllBytes) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  const TransferResult r = run_transfer(Bytes::mb(20), direct_lane(a, b));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.size, Bytes::mb(20));
  EXPECT_EQ(r.stats.chunks_delivered, r.stats.chunks_total);
  EXPECT_EQ(r.stats.hop_failures, 0);
}

TEST_F(TransferFixture, ChunkCountMatchesSize) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  TransferConfig config;
  config.chunk_size = Bytes::mb(4);
  // 10 MB over 4 MB chunks -> 3 chunks (4 + 4 + 2).
  const TransferResult r = run_transfer(Bytes::mb(10), direct_lane(a, b), config);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.stats.chunks_total, 3);
}

TEST_F(TransferFixture, ParallelStreamsBeatSingleStream) {
  const auto a1 = vm(kNEU);
  const auto b1 = vm(kNUS);
  TransferConfig one;
  one.streams_per_hop = 1;
  const TransferResult r1 = run_transfer(Bytes::mb(40), direct_lane(a1, b1), one);

  const auto a2 = vm(kNEU);
  const auto b2 = vm(kNUS);
  TransferConfig four;
  four.streams_per_hop = 4;
  const TransferResult r4 = run_transfer(Bytes::mb(40), direct_lane(a2, b2), four);

  ASSERT_TRUE(r1.ok && r4.ok);
  // 4 parallel streams should cut transatlantic time by at least 2.5x
  // (per-flow cap ~2.7 MB/s vs a 12.5 MB/s NIC).
  EXPECT_GT(r1.elapsed() / r4.elapsed(), 2.5);
}

TEST_F(TransferFixture, MultiLaneScatterBeatsSingleLane) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  TransferConfig config;
  config.streams_per_hop = 1;

  const TransferResult single = run_transfer(Bytes::mb(40), direct_lane(a, b), config);

  const auto a2 = vm(kNEU);
  const auto b2 = vm(kNUS);
  std::vector<Lane> lanes = direct_lane(a2, b2);
  for (int i = 0; i < 3; ++i) {
    lanes.push_back(Lane{{a2, vm(kNEU), b2}});  // local scatter helpers
  }
  const TransferResult multi = run_transfer(Bytes::mb(40), lanes, config);

  ASSERT_TRUE(single.ok && multi.ok);
  EXPECT_GT(single.elapsed() / multi.elapsed(), 2.0);
}

TEST_F(TransferFixture, SharedPoolShiftsLoadToFastLane) {
  // One lane throttled hard by intrusiveness... instead: one direct lane
  // and one two-WAN-hop lane; the pool should route most bytes through the
  // faster direct lane rather than splitting 50/50.
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  const auto slow_fwd = vm(Region::kWestUS);  // NEU->WUS is the slowest link
  std::vector<Lane> lanes = direct_lane(a, b);
  lanes.push_back(Lane{{a, slow_fwd, b}});
  TransferConfig config;
  config.streams_per_hop = 1;

  TransferResult out{};
  bool done = false;
  GeoTransfer t(provider(), Bytes::mb(30), lanes, config, [&](const TransferResult& r) {
    out = r;
    done = true;
  });
  t.start();
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  ASSERT_TRUE(out.ok);
  EXPECT_GT(t.lane_bytes()[0], t.lane_bytes()[1]);
}

TEST_F(TransferFixture, RelayLaneDeliversThroughIntermediateRegion) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  const auto fwd = vm(Region::kEastUS);
  const TransferResult r =
      run_transfer(Bytes::mb(10), {Lane{{a, fwd, b}}});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.stats.chunks_delivered, r.stats.chunks_total);
}

TEST_F(TransferFixture, IntrusivenessThrottlesThroughput) {
  const auto a1 = vm(kNEU);
  const auto b1 = vm(kNUS);
  TransferConfig full;
  full.intrusiveness = 1.0;
  const TransferResult fast = run_transfer(Bytes::mb(20), direct_lane(a1, b1), full);

  const auto a2 = vm(kNEU);
  const auto b2 = vm(kNUS);
  TransferConfig throttled;
  throttled.intrusiveness = 0.10;
  const TransferResult slow = run_transfer(Bytes::mb(20), direct_lane(a2, b2), throttled);

  ASSERT_TRUE(fast.ok && slow.ok);
  EXPECT_GT(slow.elapsed() / fast.elapsed(), 1.8);
}

TEST_F(TransferFixture, AcksAddLatencyForTinyTransfers) {
  const auto a1 = vm(kNEU);
  const auto b1 = vm(kNUS);
  TransferConfig with_acks;
  with_acks.acknowledgements = true;
  const TransferResult acked = run_transfer(Bytes::kb(36), direct_lane(a1, b1), with_acks);

  const auto a2 = vm(kNEU);
  const auto b2 = vm(kNUS);
  TransferConfig without;
  without.acknowledgements = false;
  const TransferResult bare = run_transfer(Bytes::kb(36), direct_lane(a2, b2), without);

  ASSERT_TRUE(acked.ok && bare.ok);
  EXPECT_GT(acked.elapsed(), bare.elapsed());
  // The gap is about one one-way control latency (~47.5 ms NUS->NEU).
  EXPECT_NEAR((acked.elapsed() - bare.elapsed()).to_seconds(), 0.0475, 0.03);
}

TEST_F(TransferFixture, ForwarderFailureRecoversViaRetransmit) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  const auto fwd = provider().provision(Region::kEastUS, VmSize::kSmall);
  std::vector<Lane> lanes = direct_lane(a, b);
  lanes.push_back(Lane{{a, fwd.id, b}});

  TransferResult out{};
  bool done = false;
  GeoTransfer t(provider(), Bytes::mb(30), lanes, {}, [&](const TransferResult& r) {
    out = r;
    done = true;
  });
  t.start();
  // Kill the forwarder mid-transfer; the direct lane must absorb the work.
  world.engine.schedule_after(SimDuration::seconds(3),
                              [&] { provider().fail_vm(fwd.id); });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.size, Bytes::mb(30));
  EXPECT_GT(out.stats.hop_failures, 0);
}

TEST_F(TransferFixture, AllLanesDeadFailsTransfer) {
  const auto a = vm(kNEU);
  const auto b = provider().provision(kNUS, VmSize::kSmall);
  TransferResult out{};
  bool done = false;
  GeoTransfer t(provider(), Bytes::mb(50), direct_lane(a, b.id), {},
                [&](const TransferResult& r) {
                  out = r;
                  done = true;
                });
  t.start();
  world.engine.schedule_after(SimDuration::seconds(2), [&] { provider().fail_vm(b.id); });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  EXPECT_FALSE(out.ok);
}

TEST_F(TransferFixture, CancelStopsTransfer) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  TransferResult out{};
  bool done = false;
  GeoTransfer t(provider(), Bytes::mb(100), direct_lane(a, b), {},
                [&](const TransferResult& r) {
                  out = r;
                  done = true;
                });
  t.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(5));
  t.cancel();
  EXPECT_TRUE(done);
  EXPECT_FALSE(out.ok);
  EXPECT_LT(out.size, Bytes::mb(100));
}

TEST_F(TransferFixture, ResetLanesMidFlightCompletes) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  TransferResult out{};
  bool done = false;
  TransferConfig config;
  config.streams_per_hop = 1;
  GeoTransfer t(provider(), Bytes::mb(40), direct_lane(a, b), config,
                [&](const TransferResult& r) {
                  out = r;
                  done = true;
                });
  t.start();
  world.engine.schedule_after(SimDuration::seconds(4), [&] {
    std::vector<Lane> lanes = direct_lane(a, b);
    lanes.push_back(Lane{{a, vm(kNEU), b}});
    lanes.push_back(Lane{{a, vm(kNEU), b}});
    t.reset_lanes(lanes);
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.size, Bytes::mb(40));
}

TEST_F(TransferFixture, RejectsMismatchedLaneEndpoints) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  const auto c = vm(Region::kWestEU);
  std::vector<Lane> lanes = direct_lane(a, b);
  lanes.push_back(Lane{{a, c}});  // wrong destination
  EXPECT_THROW(GeoTransfer(provider(), Bytes::mb(1), lanes, {}, [](const TransferResult&) {}),
               CheckFailure);
}

TEST_F(TransferFixture, ProgressIsObservable) {
  const auto a = vm(kNEU);
  const auto b = vm(kNUS);
  bool done = false;
  GeoTransfer t(provider(), Bytes::mb(200), direct_lane(a, b), {},
                [&](const TransferResult&) { done = true; });
  t.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(8));
  EXPECT_GT(t.delivered(), Bytes::zero());
  EXPECT_LT(t.delivered(), Bytes::mb(200));
  EXPECT_TRUE(t.running());
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  EXPECT_EQ(t.delivered(), Bytes::mb(200));
  EXPECT_TRUE(t.finished());
}

}  // namespace
}  // namespace sage::net
