// Tests for the baseline transfer backends.
#include "baselines/backends.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace sage::baselines {
namespace {

using cloud::Region;
using sage::testing::StableWorld;
using sage::testing::run_until;
using stream::SendOutcome;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kNUS = Region::kNorthUS;

struct BaselinesFixture : public ::testing::Test {
  StableWorld world;
  GatewayPool pool{*world.provider};

  SendOutcome run_send(stream::TransferBackend& backend, Bytes size,
                       Region src = kNEU, Region dst = kNUS) {
    SendOutcome out{};
    bool done = false;
    backend.send(src, dst, size, [&](const SendOutcome& o) {
      out = o;
      done = true;
    });
    EXPECT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(12)));
    return out;
  }
};

TEST_F(BaselinesFixture, GatewayPoolReusesGateways) {
  const auto g1 = pool.gateway(kNEU);
  const auto g2 = pool.gateway(kNEU);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(world.provider->active_vm_count(), 1u);
  const auto helpers = pool.helpers(kNEU, 3);
  EXPECT_EQ(helpers.size(), 3u);
  EXPECT_EQ(world.provider->active_vm_count(), 4u);
  // Requesting fewer returns a prefix without provisioning more.
  EXPECT_EQ(pool.helpers(kNEU, 2).size(), 2u);
  EXPECT_EQ(world.provider->active_vm_count(), 4u);
  pool.release_all();
  EXPECT_EQ(world.provider->active_vm_count(), 0u);
}

TEST_F(BaselinesFixture, DirectBackendMovesData) {
  DirectBackend backend(pool);
  const SendOutcome o = run_send(backend, Bytes::mb(20));
  EXPECT_TRUE(o.ok);
  EXPECT_GT(o.elapsed.to_seconds(), 1.0);
}

TEST_F(BaselinesFixture, SimpleParallelFasterThanDirect) {
  net::TransferConfig config;
  config.streams_per_hop = 1;
  DirectBackend direct(pool, config);
  SimpleParallelBackend parallel(pool, /*nodes=*/4, config);
  const SendOutcome d = run_send(direct, Bytes::mb(40));
  const SendOutcome p = run_send(parallel, Bytes::mb(40));
  ASSERT_TRUE(d.ok && p.ok);
  EXPECT_GT(d.elapsed / p.elapsed, 2.0);
}

TEST_F(BaselinesFixture, GlobusStaticUsesParallelStreams) {
  net::TransferConfig one_stream;
  one_stream.streams_per_hop = 1;
  DirectBackend direct(pool, one_stream);
  GlobusStaticBackend globus(pool, /*streams=*/3);
  const SendOutcome d = run_send(direct, Bytes::mb(40));
  const SendOutcome g = run_send(globus, Bytes::mb(40));
  ASSERT_TRUE(d.ok && g.ok);
  EXPECT_GT(d.elapsed / g.elapsed, 2.0);
}

TEST_F(BaselinesFixture, BlobRelayIsSlowestButWorks) {
  DirectBackend direct(pool);
  BlobRelayBackend blob(pool);
  const SendOutcome d = run_send(direct, Bytes::mb(50));
  const SendOutcome b = run_send(blob, Bytes::mb(50));
  ASSERT_TRUE(d.ok && b.ok);
  EXPECT_GT(b.elapsed, d.elapsed * 1.5);
  // The relay leaves no stranded objects behind.
  EXPECT_EQ(world.provider->blob(kNUS).object_count(), 0u);
}

TEST_F(BaselinesFixture, BlobRelayIncursStorageTransactions) {
  BlobRelayBackend blob(pool);
  const SendOutcome o = run_send(blob, Bytes::mb(10));
  ASSERT_TRUE(o.ok);
  const cloud::CostReport report = world.provider->cost_report();
  EXPECT_GT(report.blob_transactions.count_micro_usd(), 0);
}

TEST_F(BaselinesFixture, BackendsHandleConcurrentSends) {
  DirectBackend backend(pool);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    backend.send(kNEU, kNUS, Bytes::mb(5), [&](const SendOutcome& o) {
      EXPECT_TRUE(o.ok);
      ++done;
    });
  }
  ASSERT_TRUE(run_until(world.engine, [&] { return done == 5; }, SimDuration::hours(2)));
}

TEST_F(BaselinesFixture, NamesAreDistinct) {
  DirectBackend a(pool);
  SimpleParallelBackend b(pool, 2);
  GlobusStaticBackend c(pool);
  BlobRelayBackend d(pool);
  EXPECT_EQ(a.name(), "Direct");
  EXPECT_EQ(b.name(), "SimpleParallel");
  EXPECT_EQ(c.name(), "GlobusStatic");
  EXPECT_EQ(d.name(), "BlobRelay");
}

}  // namespace
}  // namespace sage::baselines
