// Tests for the cost/time model and the tradeoff solvers.
#include "model/cost_model.hpp"
#include "model/tradeoff.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace sage::model {
namespace {

monitor::LinkEstimate link(double mean, double stddev = 0.0, std::size_t samples = 10) {
  return monitor::LinkEstimate{mean, stddev, samples};
}

CostModel make_model(ModelParams params = {}) {
  return CostModel(cloud::PricingModel{}, params);
}

TEST(CostModelTest, SpeedupFollowsGainLaw) {
  ModelParams params;
  params.parallel_gain = 0.5;
  const CostModel model = make_model(params);
  EXPECT_DOUBLE_EQ(model.speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(model.speedup(2), 1.5);
  EXPECT_DOUBLE_EQ(model.speedup(5), 3.0);
}

TEST(CostModelTest, PredictTimeInverseInNodesAndThroughput) {
  const CostModel model = make_model();
  const SimDuration t1 = model.predict_time(Bytes::gb(1), ByteRate::mb_per_sec(5), 1);
  EXPECT_NEAR(t1.to_seconds(), 200.0, 1e-6);
  const SimDuration t4 = model.predict_time(Bytes::gb(1), ByteRate::mb_per_sec(5), 4);
  EXPECT_LT(t4, t1);
  EXPECT_NEAR(t4.to_seconds(), 200.0 / model.speedup(4), 1e-6);
}

TEST(CostModelTest, RiskDiscountsThroughput) {
  ModelParams cautious;
  cautious.risk = 1.0;
  ModelParams bold;
  bold.risk = 0.0;
  const auto est = link(10.0, 3.0);
  EXPECT_DOUBLE_EQ(make_model(bold).effective_throughput(est).to_mb_per_sec(), 10.0);
  EXPECT_DOUBLE_EQ(make_model(cautious).effective_throughput(est).to_mb_per_sec(), 7.0);
}

TEST(CostModelTest, RiskDiscountNeverGoesNegative) {
  ModelParams params;
  params.risk = 5.0;
  const auto rate = make_model(params).effective_throughput(link(10.0, 100.0));
  EXPECT_GT(rate.to_mb_per_sec(), 0.0);
}

TEST(CostModelTest, EgressDominatesCrossRegionCost) {
  const CostModel model = make_model();
  const TransferEstimate e = model.estimate(Bytes::gb(1), link(5.0), 2,
                                            cloud::VmSize::kSmall,
                                            cloud::Region::kNorthEU,
                                            cloud::Region::kNorthUS);
  EXPECT_NEAR(e.egress_cost.to_usd(), 0.12, 1e-6);
  EXPECT_GT(e.vm_cost().count_micro_usd(), 0);
  EXPECT_GT(e.egress_cost, e.vm_cost());  // at 2013 prices, egress dominates
  EXPECT_EQ(e.total_cost(), e.vm_cost() + e.egress_cost);
}

TEST(CostModelTest, IntraRegionTransferHasNoEgress) {
  const CostModel model = make_model();
  const TransferEstimate e =
      model.estimate(Bytes::gb(1), link(10.0), 1, cloud::VmSize::kSmall,
                     cloud::Region::kNorthEU, cloud::Region::kNorthEU);
  EXPECT_TRUE(e.egress_cost.is_zero());
}

TEST(CostModelTest, IntrusivenessScalesVmCost) {
  ModelParams full;
  full.intrusiveness = 1.0;
  ModelParams tenth;
  tenth.intrusiveness = 0.1;
  const auto size = Bytes::gb(1);
  const auto e_full = make_model(full).estimate(size, link(5.0), 2, cloud::VmSize::kSmall,
                                                cloud::Region::kNorthEU,
                                                cloud::Region::kNorthUS);
  const auto e_tenth = make_model(tenth).estimate(size, link(5.0), 2,
                                                  cloud::VmSize::kSmall,
                                                  cloud::Region::kNorthEU,
                                                  cloud::Region::kNorthUS);
  EXPECT_NEAR(e_full.vm_cost().to_usd(), e_tenth.vm_cost().to_usd() * 10.0, 1e-6);
}

TEST(CostModelTest, VmCostSplitRespectsShare) {
  ModelParams params;
  params.vm_cpu_share = 0.25;
  const auto e = make_model(params).estimate(Bytes::gb(1), link(5.0), 3,
                                             cloud::VmSize::kSmall,
                                             cloud::Region::kNorthEU,
                                             cloud::Region::kNorthUS);
  // Integer micro-USD truncation allows a few micro-dollars of slack.
  EXPECT_NEAR(e.vm_cpu_cost.to_usd() * 3.0, e.vm_bandwidth_cost.to_usd(), 1e-5);
}

TEST(CostModelTest, TimeFallsCostRisesWithNodes) {
  const CostModel model = make_model();
  TransferEstimate prev;
  for (int n = 1; n <= 10; ++n) {
    const auto e = model.estimate(Bytes::gb(1), link(5.0), n, cloud::VmSize::kSmall,
                                  cloud::Region::kNorthEU, cloud::Region::kNorthUS);
    if (n > 1) {
      EXPECT_LT(e.time, prev.time);
      EXPECT_GE(e.vm_cost(), prev.vm_cost());
    }
    prev = e;
  }
}

TEST(CostModelTest, RejectsInvalidParams) {
  ModelParams bad;
  bad.parallel_gain = 0.0;
  EXPECT_THROW(make_model(bad), CheckFailure);
  ModelParams bad2;
  bad2.intrusiveness = 1.5;
  EXPECT_THROW(make_model(bad2), CheckFailure);
}

// ---------------------------------------------------------------------------
// Tradeoff solvers.
// ---------------------------------------------------------------------------

struct SolverFixture : public ::testing::Test {
  CostModel model = make_model();
  TradeoffSolver solver{model};
  TradeoffInputs inputs;

  SolverFixture() {
    inputs.size = Bytes::gb(1);
    inputs.link = link(5.0, 0.5);
    inputs.max_nodes = 10;
  }
};

TEST_F(SolverFixture, FrontierHasOneEntryPerNodeCount) {
  const auto frontier = solver.frontier(inputs);
  ASSERT_EQ(frontier.size(), 10u);
  for (int n = 1; n <= 10; ++n) EXPECT_EQ(frontier[static_cast<std::size_t>(n - 1)].nodes, n);
}

TEST_F(SolverFixture, BudgetPicksFastestAffordable) {
  // A generous budget buys max nodes.
  const auto rich = solver.nodes_for_budget(inputs, Money::usd(100));
  EXPECT_EQ(rich.nodes, 10);
  // An impossible budget still returns a runnable single-node plan.
  const auto broke = solver.nodes_for_budget(inputs, Money::usd(0.0001));
  EXPECT_EQ(broke.nodes, 1);
  // A budget between the n=1 and n=10 costs picks something in between
  // with cost under the cap.
  const auto frontier = solver.frontier(inputs);
  const Money mid = (frontier[2].total_cost() + frontier[3].total_cost()) * 0.5;
  const auto picked = solver.nodes_for_budget(inputs, mid);
  EXPECT_LE(picked.total_cost(), mid);
  EXPECT_GE(picked.nodes, 3);
}

TEST_F(SolverFixture, DeadlinePicksCheapestMeetingIt) {
  const auto frontier = solver.frontier(inputs);
  // Deadline exactly achievable with 4 nodes.
  const SimDuration deadline = frontier[3].time + SimDuration::seconds(1);
  const auto picked = solver.nodes_for_deadline(inputs, deadline);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->nodes, 4);
  // Impossible deadline.
  EXPECT_FALSE(solver.nodes_for_deadline(inputs, SimDuration::millis(1)).has_value());
}

TEST_F(SolverFixture, KneeIsInteriorForTypicalInputs) {
  const auto knee = solver.knee(inputs);
  EXPECT_GT(knee.nodes, 1);
  EXPECT_LT(knee.nodes, 10);
}

TEST_F(SolverFixture, ResolveFastestUsesMaxNodes) {
  const auto e = solver.resolve(inputs, Tradeoff::fastest());
  EXPECT_EQ(e.nodes, 10);
}

TEST_F(SolverFixture, ResolveCheapestUsesOneNode) {
  const auto e = solver.resolve(inputs, Tradeoff::cheapest());
  EXPECT_EQ(e.nodes, 1);
}

TEST_F(SolverFixture, ResolveHonoursBudgetCap) {
  const auto frontier = solver.frontier(inputs);
  Tradeoff t = Tradeoff::fastest();
  t.budget = frontier[4].total_cost();  // can afford at most ~5 nodes
  const auto e = solver.resolve(inputs, t);
  EXPECT_LE(e.total_cost(), t.budget);
  EXPECT_EQ(e.nodes, 5);
}

TEST_F(SolverFixture, ResolveHonoursDeadlineCap) {
  const auto frontier = solver.frontier(inputs);
  Tradeoff t = Tradeoff::cheapest();
  t.deadline = frontier[5].time + SimDuration::seconds(1);
  const auto e = solver.resolve(inputs, t);
  EXPECT_LE(e.time, t.deadline);
  // Cheapest within the deadline = exactly the smallest qualifying n.
  EXPECT_EQ(e.nodes, 6);
}

TEST_F(SolverFixture, ResolveInfeasibleFallsBackToBudget) {
  Tradeoff t;
  t.budget = Money::usd(0.0001);
  t.deadline = SimDuration::millis(1);  // nothing satisfies both
  const auto e = solver.resolve(inputs, t);
  EXPECT_EQ(e.nodes, 1);  // degrade to minimal run, honouring money first
}

TEST_F(SolverFixture, LambdaBlendsBetweenExtremes) {
  Tradeoff half;
  half.lambda = 0.5;
  const auto e = solver.resolve(inputs, half);
  EXPECT_GT(e.nodes, 1);
  EXPECT_LT(e.nodes, 10);
}

TEST_F(SolverFixture, ResolveCacheReturnsExactSolverResult) {
  ResolveCache cache;
  const Tradeoff t = Tradeoff::within_budget(Money::usd(5.0));
  const TransferEstimate& memo = cache.resolve(solver, inputs, t, /*epoch=*/3);
  EXPECT_EQ(cache.misses(), 1u);
  const TransferEstimate fresh = solver.resolve(inputs, t);
  EXPECT_EQ(memo.nodes, fresh.nodes);
  EXPECT_EQ(memo.time, fresh.time);
  EXPECT_EQ(memo.total_cost(), fresh.total_cost());
  // Same epoch and inputs: served from the memo.
  (void)cache.resolve(solver, inputs, t, 3);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // Epoch moved (link estimate may differ): the memo must not answer.
  (void)cache.resolve(solver, inputs, t, 4);
  EXPECT_EQ(cache.misses(), 2u);
  // Different tradeoff under the same epoch is its own entry.
  (void)cache.resolve(solver, inputs, Tradeoff::cheapest(), 4);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(SolverFixture, ResolveCacheRingEvictionKeepsNewestEntries) {
  ResolveCache cache(2);
  const Tradeoff t;
  for (std::uint64_t e = 1; e <= 5; ++e) (void)cache.resolve(solver, inputs, t, e);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 5u);
  (void)cache.resolve(solver, inputs, t, 5);  // newest entry still resident
  EXPECT_EQ(cache.hits(), 1u);
  cache.clear();
  (void)cache.resolve(solver, inputs, t, 5);
  EXPECT_EQ(cache.misses(), 6u);
}

}  // namespace
}  // namespace sage::model
