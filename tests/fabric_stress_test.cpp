// Fabric stress test: a few hundred concurrent flows across all six regions
// with staggered starts, mid-flight cancellations and node failures. This
// exercises the incremental-settlement bookkeeping (per-link flow lists,
// component collection, completion hysteresis) far harder than the unit
// tests: every invariant here held on the original full-resettle fabric and
// must keep holding on the incremental one.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "simcore/engine.hpp"

namespace sage::cloud {
namespace {

constexpr int kFlows = 240;
constexpr int kNodesPerRegion = 5;

// One completed scenario: per-flow results plus the fabric's final egress
// meters, everything spelled in exact integer units so two runs can be
// compared for strict equality.
struct ScenarioLog {
  // (flow id, outcome, transferred bytes, finished micros)
  std::vector<std::tuple<FlowId, int, std::int64_t, std::int64_t>> results;
  std::array<std::int64_t, kRegionCount> egress{};

  bool operator==(const ScenarioLog&) const = default;
};

ScenarioLog run_scenario(std::uint64_t seed) {
  sim::SimEngine engine;
  Fabric fabric(engine, default_topology(), seed);

  std::vector<NodeId> nodes;
  for (Region r : kAllRegions) {
    for (int i = 0; i < kNodesPerRegion; ++i) {
      nodes.push_back(fabric.add_node(r, ByteRate::megabits_per_sec(600),
                                      ByteRate::megabits_per_sec(600)));
    }
  }

  ScenarioLog log;
  std::unordered_map<FlowId, int> callbacks;
  std::unordered_map<FlowId, NodeId> flow_src;
  std::unordered_map<FlowId, NodeId> flow_dst;
  std::vector<FlowId> started;

  // The scenario script is derived from its own Rng up front, so both runs
  // schedule byte-identical start/cancel/failure sequences.
  Rng rng(seed * 1000003 + 17);
  for (int i = 0; i < kFlows; ++i) {
    const auto src = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    std::size_t dst = src;
    while (dst == src) {
      dst = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    }
    const auto at = SimDuration::millis(rng.uniform_int(0, 90'000));
    const auto size = Bytes::mb(rng.uniform_int(5, 400));
    engine.schedule_at(SimTime::epoch() + at, [&, src, dst, size] {
      const FlowId id = fabric.start_flow(
          nodes[src], nodes[dst], size, {}, [&](const FlowResult& r) {
            ++callbacks[r.id];
            log.results.emplace_back(r.id, static_cast<int>(r.outcome),
                                     r.transferred.count(), r.finished.count_micros());
          });
      flow_src[id] = nodes[src];
      flow_dst[id] = nodes[dst];
      started.push_back(id);
      // Roughly a fifth of the flows get cancelled mid-flight.
      if (rng.chance(0.2)) {
        const auto delay = SimDuration::millis(rng.uniform_int(200, 30'000));
        engine.schedule_after(delay, [&, id] { fabric.cancel_flow(id); });
      }
    });
  }
  // A few nodes fail mid-run and recover later, aborting their flows.
  for (int i = 0; i < 4; ++i) {
    const auto victim = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    const auto at = SimDuration::millis(rng.uniform_int(20'000, 70'000));
    const auto down_for = SimDuration::millis(rng.uniform_int(5'000, 20'000));
    engine.schedule_at(SimTime::epoch() + at,
                       [&, victim] { fabric.set_node_failed(nodes[victim], true); });
    engine.schedule_at(SimTime::epoch() + at + down_for,
                       [&, victim] { fabric.set_node_failed(nodes[victim], false); });
  }

  engine.run();

  // Every started flow got exactly one completion callback.
  EXPECT_EQ(started.size(), static_cast<std::size_t>(kFlows));
  EXPECT_EQ(log.results.size(), static_cast<std::size_t>(kFlows));
  for (FlowId id : started) {
    auto it = callbacks.find(id);
    EXPECT_NE(it, callbacks.end()) << "flow " << id << " lost its completion";
    if (it != callbacks.end()) {
      EXPECT_EQ(it->second, 1) << "flow " << id << " completed more than once";
    }
  }
  EXPECT_EQ(fabric.active_flow_count(), 0u);

  // Byte conservation: the egress meters must equal the cross-region bytes
  // the flows report, up to the <=1-byte completion forgiveness per flow.
  std::array<std::int64_t, kRegionCount> expected{};
  for (const auto& [id, outcome, transferred, finished] : log.results) {
    const Region ra = fabric.node_region(flow_src.at(id));
    const Region rb = fabric.node_region(flow_dst.at(id));
    if (ra != rb) expected[region_index(ra)] += transferred;
  }
  for (Region r : kAllRegions) {
    const std::int64_t metered = fabric.egress_from(r).count();
    log.egress[region_index(r)] = metered;
    EXPECT_NEAR(static_cast<double>(metered),
                static_cast<double>(expected[region_index(r)]),
                static_cast<double>(kFlows));
  }
  return log;
}

TEST(FabricStressTest, ConservationAndExactlyOnceUnderChurn) {
  (void)run_scenario(11);
}

TEST(FabricStressTest, TwoRunsWithSameSeedAreIdentical) {
  const ScenarioLog a = run_scenario(23);
  const ScenarioLog b = run_scenario(23);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sage::cloud
