// Tests for the extension features: dissemination trees, sliding windows,
// top-k, monitoring history and introspection.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/introspection.hpp"
#include "core/sage.hpp"
#include "sched/broadcast.hpp"
#include "stream/operator.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

using cloud::Region;
using sage::testing::StableWorld;
using sage::testing::run_until;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;
constexpr Region kEUS = Region::kEastUS;
constexpr Region kWUS = Region::kWestUS;

void set_link(monitor::ThroughputMatrix& m, Region a, Region b, double mbps) {
  m.set(a, b, monitor::LinkEstimate{mbps, 0.0, 10});
}

// ---------------------------------------------------------------------------
// Widest spanning tree.
// ---------------------------------------------------------------------------

TEST(BroadcastTreeTest, PrefersRelayThroughFastSite) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kWEU, 10.0);  // fast regional hop
  set_link(m, kNEU, kNUS, 2.0);
  set_link(m, kWEU, kNUS, 6.0);  // WEU is the better feeder for NUS
  const auto tree = sched::widest_tree(m, kNEU, {kWEU, kNUS});
  ASSERT_EQ(tree.edges.size(), 2u);
  EXPECT_EQ(tree.edges[0].from, kNEU);
  EXPECT_EQ(tree.edges[0].to, kWEU);
  EXPECT_EQ(tree.edges[1].from, kWEU);
  EXPECT_EQ(tree.edges[1].to, kNUS);
  EXPECT_DOUBLE_EQ(tree.bottleneck_mbps(), 6.0);
}

TEST(BroadcastTreeTest, StarWhenSourceLinksDominate) {
  monitor::ThroughputMatrix m;
  for (Region t : {kWEU, kNUS, kEUS}) {
    set_link(m, kNEU, t, 10.0);
    for (Region o : {kWEU, kNUS, kEUS}) {
      if (t != o) set_link(m, t, o, 1.0);
    }
  }
  const auto tree = sched::widest_tree(m, kNEU, {kWEU, kNUS, kEUS});
  ASSERT_EQ(tree.edges.size(), 3u);
  for (const auto& e : tree.edges) EXPECT_EQ(e.from, kNEU);
}

TEST(BroadcastTreeTest, EdgesAreInDisseminationOrder) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kWEU, 10.0);
  set_link(m, kWEU, kEUS, 8.0);
  set_link(m, kEUS, kNUS, 7.0);
  set_link(m, kNEU, kEUS, 1.0);
  set_link(m, kNEU, kNUS, 1.0);
  const auto tree = sched::widest_tree(m, kNEU, {kWEU, kEUS, kNUS});
  ASSERT_EQ(tree.edges.size(), 3u);
  // Every edge's source was delivered to by an earlier edge (or is root).
  std::vector<Region> covered = {kNEU};
  for (const auto& e : tree.edges) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), e.from), covered.end());
    covered.push_back(e.to);
  }
}

TEST(BroadcastTreeTest, ChildrenAccessorAndEmptyOnNoData) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kWEU, 5.0);
  const auto tree = sched::widest_tree(m, kNEU, {kWEU});
  EXPECT_EQ(tree.children_of(kNEU), (std::vector<Region>{kWEU}));
  EXPECT_TRUE(tree.children_of(kWEU).empty());
  // A target with no monitored path at all -> empty tree.
  const auto none = sched::widest_tree(m, kNEU, {kWUS});
  EXPECT_TRUE(none.empty());
}

TEST(BroadcastTreeTest, DeduplicatesTargetsAndIgnoresRoot) {
  monitor::ThroughputMatrix m;
  set_link(m, kNEU, kWEU, 5.0);
  const auto tree = sched::widest_tree(m, kNEU, {kWEU, kWEU, kNEU});
  EXPECT_EQ(tree.edges.size(), 1u);
}

// ---------------------------------------------------------------------------
// SageEngine::disseminate end-to-end.
// ---------------------------------------------------------------------------

TEST(DisseminateTest, DeliversToEveryTarget) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kWEU, kEUS, kNUS};
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  bool done = false;
  core::SageEngine::DisseminateResult result;
  engine.disseminate(kNEU, {kWEU, kEUS, kNUS}, Bytes::mb(40),
                     [&](const core::SageEngine::DisseminateResult& r) {
                       result = r;
                       done = true;
                     });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(6)));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.arrivals.size(), 3u);
  EXPECT_EQ(result.tree_edges, 3);
  EXPECT_GT(result.elapsed.to_seconds(), 1.0);
  // Every requested region arrived exactly once.
  for (Region t : {kWEU, kEUS, kNUS}) {
    int count = 0;
    for (const auto& [r, at] : result.arrivals) count += (r == t) ? 1 : 0;
    EXPECT_EQ(count, 1) << cloud::region_name(t);
  }
}

TEST(DisseminateTest, ColdMapFallsBackToUnicastAndStillDelivers) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kWEU, kNUS};
  core::SageEngine engine(*world.provider, config);
  engine.deploy();  // no warmup: empty map
  bool done = false;
  core::SageEngine::DisseminateResult result;
  engine.disseminate(kNEU, {kWEU, kNUS}, Bytes::mb(5),
                     [&](const core::SageEngine::DisseminateResult& r) {
                       result = r;
                       done = true;
                     });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(6)));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.arrivals.size(), 2u);
}

// ---------------------------------------------------------------------------
// Sliding window aggregation.
// ---------------------------------------------------------------------------

stream::Record rec(double value, std::uint64_t key, SimTime t = SimTime::epoch()) {
  stream::Record r;
  r.value = value;
  r.key = key;
  r.event_time = t;
  r.wire_size = Bytes::of(64);
  return r;
}

TEST(SlidingWindowTest, WindowCoversMultipleSlides) {
  stream::SlidingWindowAggregateOperator op("s", SimDuration::seconds(30),
                                            SimDuration::seconds(10),
                                            stream::AggregateFn::kSum);
  stream::RecordBatch none;
  // Slide 1: value 1; slide 2: value 2; slide 3: value 4.
  stream::RecordBatch b1;
  b1.add(rec(1.0, 7));
  op.process(0, b1, none);
  stream::RecordBatch out1;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out1);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_DOUBLE_EQ(out1.row(0).value, 1.0);

  stream::RecordBatch b2;
  b2.add(rec(2.0, 7));
  op.process(0, b2, none);
  stream::RecordBatch out2;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(20), out2);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_DOUBLE_EQ(out2.row(0).value, 3.0);  // 1 + 2 still in window

  stream::RecordBatch b3;
  b3.add(rec(4.0, 7));
  op.process(0, b3, none);
  stream::RecordBatch out3;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(30), out3);
  ASSERT_EQ(out3.size(), 1u);
  EXPECT_DOUBLE_EQ(out3.row(0).value, 7.0);  // 1 + 2 + 4

  // Next slide: the first pane (value 1) expires out of the 30 s window.
  stream::RecordBatch out4;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(40), out4);
  ASSERT_EQ(out4.size(), 1u);
  EXPECT_DOUBLE_EQ(out4.row(0).value, 6.0);  // 2 + 4
}

TEST(SlidingWindowTest, IdleKeysAreDropped) {
  stream::SlidingWindowAggregateOperator op("s", SimDuration::seconds(20),
                                            SimDuration::seconds(10),
                                            stream::AggregateFn::kCount);
  stream::RecordBatch none;
  stream::RecordBatch b;
  b.add(rec(1.0, 1));
  op.process(0, b, none);
  stream::RecordBatch out;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out);
  EXPECT_EQ(out.size(), 1u);
  // Two empty slides later the key's state must be gone.
  stream::RecordBatch o2;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(20), o2);
  stream::RecordBatch o3;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(30), o3);
  EXPECT_EQ(op.pane_count(), 0u);
}

TEST(SlidingWindowTest, RejectsNonDividingSlide) {
  EXPECT_THROW(stream::SlidingWindowAggregateOperator(
                   "bad", SimDuration::seconds(30), SimDuration::seconds(7),
                   stream::AggregateFn::kSum),
               CheckFailure);
}

// ---------------------------------------------------------------------------
// Top-K.
// ---------------------------------------------------------------------------

TEST(TopKTest, EmitsHeaviestKeysInOrder) {
  stream::TopKOperator op("t", SimDuration::seconds(10), 2);
  stream::RecordBatch none;
  stream::RecordBatch b;
  for (int i = 0; i < 5; ++i) b.add(rec(1.0, 100));
  for (int i = 0; i < 3; ++i) b.add(rec(1.0, 200));
  b.add(rec(1.0, 300));
  op.process(0, b, none);
  stream::RecordBatch out;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.row(0).key, 100u);
  EXPECT_DOUBLE_EQ(out.row(0).value, 5.0);
  EXPECT_EQ(out.row(1).key, 200u);
  EXPECT_DOUBLE_EQ(out.row(1).value, 3.0);
}

TEST(TopKTest, SumValuesMode) {
  stream::TopKOperator op("t", SimDuration::seconds(10), 1, /*sum_values=*/true);
  stream::RecordBatch none;
  stream::RecordBatch b;
  b.add(rec(10.0, 1));
  b.add(rec(1.0, 2));
  b.add(rec(1.0, 2));
  op.process(0, b, none);
  stream::RecordBatch out;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).key, 1u);  // weight 10 beats count 2
}

TEST(TopKTest, WindowStateResets) {
  stream::TopKOperator op("t", SimDuration::seconds(10), 3);
  stream::RecordBatch none;
  stream::RecordBatch b;
  b.add(rec(1.0, 1));
  op.process(0, b, none);
  stream::RecordBatch out1;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out1);
  EXPECT_EQ(out1.size(), 1u);
  stream::RecordBatch out2;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(20), out2);
  EXPECT_TRUE(out2.empty());
}

// ---------------------------------------------------------------------------
// Monitoring history + introspection.
// ---------------------------------------------------------------------------

TEST(HistoryTest, RecordsSamplesInOrderAndBoundsCapacity) {
  StableWorld world;
  monitor::MonitorConfig config;
  config.probe_interval = SimDuration::minutes(1);
  config.history_capacity = 5;
  monitor::MonitoringService service(*world.provider, config);
  service.register_agent(kNEU, world.provider->provision(kNEU, cloud::VmSize::kSmall).id);
  service.register_agent(kNUS, world.provider->provision(kNUS, cloud::VmSize::kSmall).id);
  service.start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(30));
  const auto history = service.history(kNEU, kNUS);
  ASSERT_EQ(history.size(), 5u);  // capped at capacity
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i].at, history[i - 1].at);
    EXPECT_GT(history[i].mbps, 0.0);
  }
  EXPECT_TRUE(service.history(kNEU, kWEU).empty());  // unmonitored pair
}

TEST(IntrospectionTest, ReportContainsAllSections) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kNUS};
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  bool done = false;
  engine.send(kNEU, kNUS, Bytes::mb(20),
              [&](const stream::SendOutcome&) { done = true; });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));

  const core::IntrospectionReport report = core::introspect(engine);
  EXPECT_NE(report.link_service_levels.find("NEU->NUS"), std::string::npos);
  EXPECT_NE(report.compute_health.find("North EU"), std::string::npos);
  EXPECT_NE(report.bill.find("WAN egress"), std::string::npos);
  EXPECT_NE(report.decision_audit.find("20.0 MB"), std::string::npos);
  const std::string all = report.render();
  EXPECT_NE(all.find("== Link service levels =="), std::string::npos);
  EXPECT_NE(all.find("== Decision audit =="), std::string::npos);
  EXPECT_NE(all.find("== Runtime =="), std::string::npos);

  // The runtime section reflects the engine's live accounting, and the
  // conservation identity scheduled == fired + cancelled + live holds at
  // any quiescent point.
  const core::SageEngine::RuntimeStats s = engine.runtime_stats();
  EXPECT_EQ(s.now, world.engine.now());
  EXPECT_GT(s.events_fired, 0u);
  EXPECT_EQ(s.events_scheduled, s.events_fired + s.events_cancelled + s.events_live);
  EXPECT_NE(report.runtime.find(std::to_string(s.events_fired)), std::string::npos);
}

TEST(IntrospectionTest, EmptyHistoryRendersGracefully) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kNUS};
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  const core::IntrospectionReport report = core::introspect(engine);
  EXPECT_NE(report.decision_audit.find("no transfers yet"), std::string::npos);
}

}  // namespace
}  // namespace sage
