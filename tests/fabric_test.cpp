// Tests for the fluid-flow WAN fabric (max-min sharing, per-flow TCP caps,
// NIC limits, failures, egress accounting) on the *stable* topology, where
// rates are analytic.
#include "cloud/fabric.hpp"

#include <gtest/gtest.h>

#include "cloud/topology.hpp"
#include "common/check.hpp"
#include "common/stats.hpp"
#include "test_util.hpp"

namespace sage::cloud {
namespace {

using sage::testing::run_until;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;

const ByteRate kSmallNic = ByteRate::megabits_per_sec(100);  // 12.5 MB/s

struct FabricFixture : public ::testing::Test {
  sim::SimEngine engine;
  Topology topo = stable_topology();
  Fabric fabric{engine, topo, /*seed=*/7};

  NodeId vm(Region r) { return fabric.add_node(r, kSmallNic, kSmallNic); }

  /// Start a flow and run to completion; returns the result.
  FlowResult run_flow(NodeId src, NodeId dst, Bytes size, FlowOptions options = {}) {
    FlowResult out{};
    bool done = false;
    fabric.start_flow(src, dst, size, options, [&](const FlowResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(run_until(engine, [&] { return done; }, SimDuration::hours(12)));
    return out;
  }
};

TEST_F(FabricFixture, SingleWanFlowHitsPerFlowCap) {
  const ByteRate cap = topo.link(kNEU, kNUS).per_flow_cap;
  const Bytes size = cap * SimDuration::seconds(20);  // ~20 s of payload
  const FlowResult r = run_flow(vm(kNEU), vm(kNUS), size);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.transferred, size);
  const double expected_s = 20.0 + topo.link(kNEU, kNUS).latency.to_seconds();
  EXPECT_NEAR(r.elapsed().to_seconds(), expected_s, 0.5);
}

TEST_F(FabricFixture, IntraRegionFlowIsNicBound) {
  const Bytes size = kSmallNic * SimDuration::seconds(10);
  const FlowResult r = run_flow(vm(kNEU), vm(kNEU), size);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.elapsed().to_seconds(), 10.0, 0.2);
}

TEST_F(FabricFixture, IntraFlowIsMuchFasterThanTransatlantic) {
  const Bytes size = Bytes::mb(50);
  const FlowResult intra = run_flow(vm(kNEU), vm(kNEU), size);
  const FlowResult wan = run_flow(vm(kNEU), vm(kNUS), size);
  ASSERT_TRUE(intra.ok());
  ASSERT_TRUE(wan.ok());
  EXPECT_GT(wan.elapsed() / intra.elapsed(), 3.0);
}

TEST_F(FabricFixture, NicSharedAcrossConcurrentFlows) {
  // Six concurrent flows out of one VM exceed its NIC: each should get
  // NIC/6, not the WAN per-flow cap.
  const NodeId src = vm(kNEU);
  const Bytes size = Bytes::mb(10);
  int done = 0;
  std::vector<FlowResult> results(6);
  for (int i = 0; i < 6; ++i) {
    fabric.start_flow(src, vm(kNUS), size, {}, [&, i](const FlowResult& r) {
      results[static_cast<std::size_t>(i)] = r;
      ++done;
    });
  }
  ASSERT_TRUE(run_until(engine, [&] { return done == 6; }, SimDuration::hours(1)));
  const double share = kSmallNic.to_mb_per_sec() / 6.0;  // ~2.08 MB/s
  for (const FlowResult& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.achieved_rate().to_mb_per_sec(), share, 0.15);
  }
}

TEST_F(FabricFixture, WanAggregateCapacitySaturates) {
  // Twelve distinct VM pairs exceed the pair link's aggregate capacity
  // (8x the per-flow cap): each flow gets capacity/12.
  const ByteRate cap = topo.link(kNEU, kNUS).per_flow_cap;
  const ByteRate aggregate = topo.link(kNEU, kNUS).capacity;
  const Bytes size = Bytes::mb(10);
  int done = 0;
  std::vector<FlowResult> results(12);
  for (int i = 0; i < 12; ++i) {
    fabric.start_flow(vm(kNEU), vm(kNUS), size, {}, [&, i](const FlowResult& r) {
      results[static_cast<std::size_t>(i)] = r;
      ++done;
    });
  }
  ASSERT_TRUE(run_until(engine, [&] { return done == 12; }, SimDuration::hours(1)));
  const double share = aggregate.to_mb_per_sec() / 12.0;
  ASSERT_LT(share, cap.to_mb_per_sec());  // sanity: link is the bottleneck
  for (const FlowResult& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.achieved_rate().to_mb_per_sec(), share, 0.2);
  }
}

TEST_F(FabricFixture, TwoFlowsBelowCapacityEachGetFullCap) {
  const ByteRate cap = topo.link(kNEU, kNUS).per_flow_cap;
  const Bytes size = cap * SimDuration::seconds(15);
  int done = 0;
  std::vector<FlowResult> results(2);
  for (int i = 0; i < 2; ++i) {
    fabric.start_flow(vm(kNEU), vm(kNUS), size, {}, [&, i](const FlowResult& r) {
      results[static_cast<std::size_t>(i)] = r;
      ++done;
    });
  }
  ASSERT_TRUE(run_until(engine, [&] { return done == 2; }, SimDuration::hours(1)));
  for (const FlowResult& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.elapsed().to_seconds(), 15.0, 0.5);
  }
}

TEST_F(FabricFixture, DemandCapBindsFlow) {
  FlowOptions options;
  options.demand_cap = ByteRate::mb_per_sec(1.0);
  const FlowResult r = run_flow(vm(kNEU), vm(kNUS), Bytes::mb(10), options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.elapsed().to_seconds(), 10.0, 0.3);
}

TEST_F(FabricFixture, DemandLimitedFlowLeavesCapacityToOthers) {
  // One throttled + one free flow out of the same NIC: the free flow keeps
  // the WAN per-flow cap because the throttled one does not contend.
  const NodeId src = vm(kNEU);
  const ByteRate cap = topo.link(kNEU, kNUS).per_flow_cap;
  FlowOptions slow;
  slow.demand_cap = ByteRate::mb_per_sec(0.5);
  bool slow_done = false;
  fabric.start_flow(src, vm(kNUS), Bytes::mb(5), slow,
                    [&](const FlowResult&) { slow_done = true; });
  FlowResult fast{};
  bool fast_done = false;
  fabric.start_flow(src, vm(kNUS), cap * SimDuration::seconds(10), {},
                    [&](const FlowResult& r) {
                      fast = r;
                      fast_done = true;
                    });
  ASSERT_TRUE(run_until(engine, [&] { return fast_done && slow_done; },
                        SimDuration::hours(1)));
  EXPECT_NEAR(fast.elapsed().to_seconds(), 10.0, 0.5);
}

TEST_F(FabricFixture, ExtraSetupLatencyDelaysCompletion) {
  FlowOptions options;
  options.extra_setup_latency = SimDuration::seconds(2);
  const ByteRate cap = topo.link(kNEU, kNUS).per_flow_cap;
  const FlowResult r = run_flow(vm(kNEU), vm(kNUS), cap * SimDuration::seconds(5), options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.elapsed().to_seconds(), 7.0, 0.3);
}

TEST_F(FabricFixture, CancelMidFlight) {
  const NodeId a = vm(kNEU);
  const NodeId b = vm(kNUS);
  FlowResult result{};
  bool done = false;
  const FlowId id = fabric.start_flow(a, b, Bytes::mb(100), {}, [&](const FlowResult& r) {
    result = r;
    done = true;
  });
  engine.run_until(engine.now() + SimDuration::seconds(10));
  EXPECT_TRUE(fabric.flow_active(id));
  EXPECT_GT(fabric.flow_transferred(id), Bytes::zero());
  fabric.cancel_flow(id);
  EXPECT_TRUE(done);
  EXPECT_EQ(result.outcome, FlowOutcome::kCancelled);
  EXPECT_GT(result.transferred, Bytes::zero());
  EXPECT_LT(result.transferred, Bytes::mb(100));
  EXPECT_FALSE(fabric.flow_active(id));
}

TEST_F(FabricFixture, NodeFailureAbortsItsFlows) {
  const NodeId a = vm(kNEU);
  const NodeId b = vm(kNUS);
  FlowResult result{};
  bool done = false;
  fabric.start_flow(a, b, Bytes::mb(100), {}, [&](const FlowResult& r) {
    result = r;
    done = true;
  });
  engine.run_until(engine.now() + SimDuration::seconds(5));
  fabric.set_node_failed(b, true);
  EXPECT_TRUE(done);
  EXPECT_EQ(result.outcome, FlowOutcome::kFailed);
  EXPECT_TRUE(fabric.node_failed(b));
}

TEST_F(FabricFixture, FlowToFailedNodeFailsAsync) {
  const NodeId a = vm(kNEU);
  const NodeId b = vm(kNUS);
  fabric.set_node_failed(b, true);
  FlowResult result{};
  bool done = false;
  fabric.start_flow(a, b, Bytes::mb(1), {}, [&](const FlowResult& r) {
    result = r;
    done = true;
  });
  EXPECT_FALSE(done);  // asynchronous, never re-entrant
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(result.outcome, FlowOutcome::kFailed);
  EXPECT_TRUE(result.transferred.is_zero());
}

TEST_F(FabricFixture, RecoveredNodeAcceptsFlows) {
  const NodeId a = vm(kNEU);
  const NodeId b = vm(kNUS);
  fabric.set_node_failed(b, true);
  fabric.set_node_failed(b, false);
  const FlowResult r = run_flow(a, b, Bytes::mb(1));
  EXPECT_TRUE(r.ok());
}

TEST_F(FabricFixture, EgressCountsOnlyCrossRegionBytes) {
  const Bytes wan_bytes = Bytes::mb(8);
  (void)run_flow(vm(kNEU), vm(kNUS), wan_bytes);
  (void)run_flow(vm(kNEU), vm(kNEU), Bytes::mb(32));  // intra: free
  EXPECT_NEAR(fabric.egress_from(kNEU).to_mb(), wan_bytes.to_mb(), 0.01);
  EXPECT_TRUE(fabric.egress_from(kNUS).is_zero());
}

TEST_F(FabricFixture, PairFlowCountTracksLiveFlows) {
  EXPECT_EQ(fabric.pair_flow_count(kNEU, kNUS), 0u);
  bool done = false;
  fabric.start_flow(vm(kNEU), vm(kNUS), Bytes::mb(50), {},
                    [&](const FlowResult&) { done = true; });
  engine.run_until(engine.now() + SimDuration::seconds(2));
  EXPECT_EQ(fabric.pair_flow_count(kNEU, kNUS), 1u);
  EXPECT_EQ(fabric.pair_flow_count(kNEU, kWEU), 0u);
  ASSERT_TRUE(run_until(engine, [&] { return done; }, SimDuration::hours(1)));
  EXPECT_EQ(fabric.pair_flow_count(kNEU, kNUS), 0u);
}

TEST_F(FabricFixture, PairFlowCountIncludesSetupPhase) {
  // Flows count against their pair link from start_flow on, before the
  // setup-latency event activates them (the monitoring layer must see a
  // just-launched transfer when deciding whether to probe).
  fabric.start_flow(vm(kNEU), vm(kNUS), Bytes::mb(50), {}, [](const FlowResult&) {});
  fabric.start_flow(vm(kNEU), vm(kNUS), Bytes::mb(50), {}, [](const FlowResult&) {});
  const FlowId weu = fabric.start_flow(vm(kNEU), vm(kWEU), Bytes::mb(50), {},
                                       [](const FlowResult&) {});
  EXPECT_EQ(fabric.pair_flow_count(kNEU, kNUS), 2u);
  EXPECT_EQ(fabric.pair_flow_count(kNEU, kWEU), 1u);
  EXPECT_EQ(fabric.pair_flow_count(kWEU, kNEU), 0u);  // counts are directed
  fabric.cancel_flow(weu);  // cancelled during setup: count drops immediately
  EXPECT_EQ(fabric.pair_flow_count(kNEU, kWEU), 0u);
}

TEST_F(FabricFixture, StableRefreshDoesNotChurnEventQueue) {
  // On a drift-free topology every refresh re-settles to the same rates, so
  // the completion-event hysteresis must keep the scheduled events queued
  // instead of cancelling and re-pushing them every tick. Microsecond
  // truncation in the recomputed finish target occasionally forces a
  // legitimate re-push, so assert strong suppression rather than zero.
  constexpr int kFlows = 8;
  for (int i = 0; i < kFlows; ++i) {
    fabric.start_flow(vm(kNEU), vm(kNUS), Bytes::gb(50), {}, [](const FlowResult&) {});
  }
  engine.run_until(engine.now() + SimDuration::seconds(5));  // activate + settle
  const std::size_t pending = engine.pending_events();
  constexpr int kTicks = 240;  // 120 s at the default 500 ms refresh
  engine.run_until(engine.now() + SimDuration::seconds(120));
  const std::size_t growth = engine.pending_events() - pending;
  // Without hysteresis every tick re-pushes all completions, stranding one
  // dead heap entry each: kFlows * kTicks. Demand at least 80% suppression.
  EXPECT_LE(growth, static_cast<std::size_t>(kFlows) * kTicks / 5);
}

TEST(FabricDeterminismTest, IdenticalSeedsProduceIdenticalFinishTimes) {
  // Two runs with the same seed on the *noisy* topology must agree on every
  // completion to the microsecond; settlement order must not depend on hash
  // layout or platform.
  const auto run_once = [] {
    sim::SimEngine engine;
    Fabric fabric(engine, default_topology(), /*seed=*/42);
    std::vector<NodeId> nodes;
    for (Region r : kAllRegions) {
      for (int i = 0; i < 2; ++i) {
        nodes.push_back(fabric.add_node(r, ByteRate::megabits_per_sec(400),
                                        ByteRate::megabits_per_sec(400)));
      }
    }
    std::vector<std::pair<FlowId, std::int64_t>> finishes;
    for (int i = 0; i < 40; ++i) {
      const NodeId src = nodes[static_cast<std::size_t>(i) % nodes.size()];
      const NodeId dst = nodes[static_cast<std::size_t>(i * 5 + 3) % nodes.size()];
      if (fabric.node_region(src) == fabric.node_region(dst)) continue;
      engine.schedule_after(SimDuration::seconds(i), [&fabric, &engine, &finishes, src,
                                                      dst, i] {
        fabric.start_flow(src, dst, Bytes::mb(20 * (i % 7 + 1)), {},
                          [&finishes, &engine](const FlowResult& r) {
                            finishes.emplace_back(r.id, engine.now().count_micros());
                          });
      });
    }
    engine.run();
    return finishes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(FabricFixture, ZeroByteFlowCompletesAfterSetup) {
  const FlowResult r = run_flow(vm(kNEU), vm(kNUS), Bytes::zero());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.transferred.is_zero());
  EXPECT_NEAR(r.elapsed().to_seconds(), topo.link(kNEU, kNUS).latency.to_seconds(), 1e-3);
}

TEST_F(FabricFixture, RejectsSelfFlow) {
  const NodeId a = vm(kNEU);
  EXPECT_THROW(fabric.start_flow(a, a, Bytes::mb(1), {}, [](const FlowResult&) {}),
               CheckFailure);
}

TEST_F(FabricFixture, StableTopologyCapacityIsConstant) {
  const ByteRate c1 = fabric.pair_capacity_now(kNEU, kNUS);
  engine.run_until(engine.now() + SimDuration::hours(5));
  const ByteRate c2 = fabric.pair_capacity_now(kNEU, kNUS);
  EXPECT_DOUBLE_EQ(c1.bytes_per_second(), c2.bytes_per_second());
}

TEST(FabricVariabilityTest, DefaultTopologyCapacityMoves) {
  sim::SimEngine engine;
  Fabric fabric(engine, default_topology(), /*seed=*/3);
  OnlineStats stats;
  for (int i = 0; i < 200; ++i) {
    engine.run_until(engine.now() + SimDuration::minutes(5));
    stats.add(fabric.pair_capacity_now(Region::kNorthEU, Region::kNorthUS)
                  .to_mb_per_sec());
  }
  EXPECT_GT(stats.stddev() / stats.mean(), 0.03);  // visibly variable
  EXPECT_GT(stats.min(), 0.0);
}

}  // namespace
}  // namespace sage::cloud
