// Differential observability suite.
//
// The observability layer's two core promises, pinned by construction:
//   1. enabling metrics + tracing never perturbs a simulation — the same
//      seed produces bit-identical sim results with obs on or off;
//   2. obs output itself is deterministic — metric snapshots and serialized
//      traces are byte-identical across harness thread counts and repeated
//      runs.
// Plus the engine event-accounting invariant (satellite of PR3's slab
// queue): events_scheduled() == events_fired() + events_cancelled() +
// live_events(), including the cancelled-husk path where the heap still
// holds entries whose slots were already released.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "net/transfer.hpp"
#include "obs/obs.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

/// Set an environment variable for the scope of one test body.
struct ScopedEnv {
  std::string key;
  ScopedEnv(const char* k, const char* v) : key(k) { ::setenv(k, v, 1); }
  ~ScopedEnv() { ::unsetenv(key.c_str()); }
};

// ---------------------------------------------------------------------------
// Engine event accounting.
// ---------------------------------------------------------------------------

void expect_accounting(const sim::SimEngine& e) {
  EXPECT_EQ(e.events_scheduled(),
            e.events_fired() + e.events_cancelled() + e.live_events());
}

TEST(EventAccounting, InvariantHoldsThroughCancelAndFire) {
  sim::SimEngine engine;
  expect_accounting(engine);

  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(engine.schedule_after(SimDuration::seconds(i + 1), [] {}));
  }
  EXPECT_EQ(engine.events_scheduled(), 10u);
  EXPECT_EQ(engine.live_events(), 10u);
  expect_accounting(engine);

  // Cancel every other event: the live count drops immediately even though
  // the heap still holds the husks (they are dropped lazily on pop).
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_EQ(engine.events_cancelled(), 5u);
  EXPECT_EQ(engine.live_events(), 5u);
  EXPECT_GT(engine.pending_events(), engine.live_events());
  expect_accounting(engine);

  // Cancelling twice (or cancelling a dead handle) must not double-count.
  handles[0].cancel();
  EXPECT_EQ(engine.events_cancelled(), 5u);
  expect_accounting(engine);

  engine.run();
  EXPECT_EQ(engine.events_fired(), 5u);
  EXPECT_EQ(engine.live_events(), 0u);
  expect_accounting(engine);

  // Cancelling after the event fired is inert too.
  handles[1].cancel();
  EXPECT_EQ(engine.events_cancelled(), 5u);
  expect_accounting(engine);
}

TEST(EventAccounting, RunUntilSentinelHusksStayConsistent) {
  // World::run_until plants a deadline sentinel and cancels it on exit; on
  // an empty world each call leaves one cancelled husk behind. The counters
  // must agree with live_events() no matter how many husks pile up.
  bench::World world(/*seed=*/7);
  for (int i = 0; i < 5; ++i) {
    const bench::RunOutcome out = world.run_until([] { return false; });
    EXPECT_EQ(out.reason, bench::RunStop::kIdle);
  }
  const sim::SimEngine& e = world.engine;
  EXPECT_EQ(e.events_scheduled(), 5u);
  EXPECT_EQ(e.events_cancelled(), 5u);
  EXPECT_EQ(e.events_fired(), 0u);
  EXPECT_EQ(e.live_events(), 0u);
  expect_accounting(e);
}

TEST(EventAccounting, PublishedMetricsMatchAccessors) {
  sim::SimEngine engine;
  engine.enable_obs(obs::ObsConfig{});
  ASSERT_NE(engine.obs(), nullptr);

  (void)engine.schedule_after(SimDuration::seconds(1), [] {});
  sim::EventHandle doomed = engine.schedule_after(SimDuration::seconds(2), [] {});
  doomed.cancel();
  engine.run();

  engine.publish_obs_metrics();
  const auto& m = engine.obs()->metrics();
  ASSERT_NE(m.find_counter("sim.events.scheduled"), nullptr);
  EXPECT_EQ(m.find_counter("sim.events.scheduled")->value(), engine.events_scheduled());
  EXPECT_EQ(m.find_counter("sim.events.fired")->value(), engine.events_fired());
  EXPECT_EQ(m.find_counter("sim.events.cancelled")->value(), engine.events_cancelled());
  EXPECT_EQ(m.find_gauge("sim.events.live")->value(),
            static_cast<double>(engine.live_events()));

  // publish is delta-based: repeating it with no new activity changes nothing.
  engine.publish_obs_metrics();
  EXPECT_EQ(m.find_counter("sim.events.scheduled")->value(), engine.events_scheduled());
  EXPECT_EQ(m.find_counter("sim.events.fired")->value(), engine.events_fired());
  EXPECT_EQ(m.find_counter("sim.events.cancelled")->value(), engine.events_cancelled());
}

// ---------------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SnapshotIsInsertionOrderIndependent) {
  obs::MetricsRegistry a;
  a.counter("z.count")->add(3);
  a.gauge("a.depth", {{"site", "NEU"}})->set(2.5);
  a.histogram("m.lat", {1.0, 10.0})->observe(4.0);

  obs::MetricsRegistry b;
  b.histogram("m.lat", {1.0, 10.0})->observe(4.0);
  b.gauge("a.depth", {{"site", "NEU"}})->set(2.5);
  b.counter("z.count")->add(3);

  EXPECT_EQ(a.snapshot_json(), b.snapshot_json());
  EXPECT_EQ(a.snapshot_csv(), b.snapshot_csv());
}

TEST(MetricsRegistryTest, KeysSortLabelsCanonically) {
  const std::string key = obs::MetricsRegistry::make_key(
      "fab.bytes", {{"z", "1"}, {"a", "2"}});
  EXPECT_EQ(key, "fab.bytes{a=2,z=1}");
  // Same labels in any order resolve to the same cell.
  obs::MetricsRegistry r;
  obs::Counter* c1 = r.counter("fab.bytes", {{"z", "1"}, {"a", "2"}});
  obs::Counter* c2 = r.counter("fab.bytes", {{"a", "2"}, {"z", "1"}});
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MetricsRegistryTest, FindNeverCreatesAndChecksKind) {
  obs::MetricsRegistry r;
  r.counter("c")->add();
  EXPECT_EQ(r.find_gauge("c"), nullptr);   // kind mismatch
  EXPECT_EQ(r.find_counter("x"), nullptr); // miss
  EXPECT_EQ(r.size(), 1u);                 // finds created nothing
  ASSERT_NE(r.find_counter("c"), nullptr);
  EXPECT_EQ(r.find_counter("c")->value(), 1u);
}

TEST(MetricsRegistryTest, MergeAddsCountersAndBucketsGaugesLastWriteWins) {
  obs::MetricsRegistry a;
  a.counter("n")->add(2);
  a.gauge("g")->set(1.0);
  a.histogram("h", {5.0})->observe(3.0);
  a.counter("only_a")->add(1);

  obs::MetricsRegistry b;
  b.counter("n")->add(5);
  b.gauge("g")->set(9.0);
  b.histogram("h", {5.0})->observe(7.0);
  b.counter("only_b")->add(4);

  a.merge(b);
  EXPECT_EQ(a.find_counter("n")->value(), 7u);
  EXPECT_EQ(a.find_gauge("g")->value(), 9.0);
  EXPECT_EQ(a.find_counter("only_a")->value(), 1u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 4u);
  const obs::Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 10.0);
  ASSERT_EQ(h->counts().size(), 2u);
  EXPECT_EQ(h->counts()[0], 1u);  // 3.0 <= 5.0
  EXPECT_EQ(h->counts()[1], 1u);  // 7.0 -> +inf bucket
}

TEST(MetricsRegistryTest, HistogramBucketsAreInclusiveUpperBounds) {
  obs::MetricsRegistry r;
  obs::Histogram* h = r.histogram("lat", {1.0, 2.0});
  h->observe(1.0);   // first bucket (inclusive)
  h->observe(1.5);   // second
  h->observe(99.0);  // overflow
  EXPECT_EQ(h->counts()[0], 1u);
  EXPECT_EQ(h->counts()[1], 1u);
  EXPECT_EQ(h->counts()[2], 1u);
  EXPECT_EQ(h->count(), 3u);
}

// ---------------------------------------------------------------------------
// Trace sink semantics.
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, SerializeRendersDepthInstantsAndAttrs) {
  obs::TraceSink t(16);
  const auto root = t.begin(t.intern("root"), SimTime::epoch(), obs::kNoSpan,
                            /*a=*/64.0, /*b=*/2.0);
  const auto child = t.begin(t.intern("child"),
                             SimTime::epoch() + SimDuration::millis(500), root);
  t.instant(t.intern("mark"), SimTime::epoch() + SimDuration::seconds(1), child);
  t.end(child, SimTime::epoch() + SimDuration::millis(1500));
  t.end(root, SimTime::epoch() + SimDuration::seconds(2));
  const auto open = t.begin(t.intern("late"), SimTime::epoch() + SimDuration::seconds(3));
  (void)open;

  EXPECT_EQ(t.serialize(),
            "- root t=0.000000 dur=2.000000 a=64 b=2\n"
            "  - child t=0.500000 dur=1.000000\n"
            "    @ mark t=1.000000\n"
            "- late t=3.000000 open\n");
  EXPECT_EQ(t.emitted(), 4u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceSinkTest, RingDropsOldestAndEndIsIdValidated) {
  obs::TraceSink t(4);
  std::vector<obs::SpanId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(t.begin(t.intern("s"), SimTime::epoch() + SimDuration::seconds(i)));
  }
  EXPECT_EQ(t.emitted(), 10u);
  EXPECT_EQ(t.dropped(), 6u);

  // Closing an overwritten span is a no-op, not a corruption of whichever
  // span reused its slot.
  t.end(ids[0], SimTime::epoch() + SimDuration::seconds(99));
  const auto retained = t.spans();
  ASSERT_EQ(retained.size(), 4u);
  EXPECT_EQ(retained.front().id, ids[6]);
  EXPECT_EQ(retained.back().id, ids[9]);
  for (const obs::Span& s : retained) EXPECT_FALSE(s.closed);

  // Closing a retained span works normally.
  t.end(ids[9], SimTime::epoch() + SimDuration::seconds(20));
  EXPECT_TRUE(t.spans().back().closed);
}

// ---------------------------------------------------------------------------
// Differential: metric snapshots across harness thread counts, and sim
// results with obs on vs off.
// ---------------------------------------------------------------------------

struct Cell {
  int vms = 0;
  std::uint64_t seed = 0;
};

double cell_transfer_seconds(const Cell& cell) {
  // bench::World reads SAGE_OBS, so this grid point is observed whenever the
  // surrounding test enabled it — exactly like the figure benches.
  bench::World world(cell.seed);
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
  const auto dst = provider.provision(cloud::Region::kNorthUS, cloud::VmSize::kSmall);
  std::vector<net::Lane> lanes = net::direct_lane(src.id, dst.id);
  for (int i = 1; i < cell.vms; ++i) {
    const auto helper = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
    lanes.push_back(net::Lane{{src.id, helper.id, dst.id}});
  }
  net::TransferConfig config;
  config.streams_per_hop = 1;
  double seconds = 0.0;
  bool done = false;
  net::GeoTransfer transfer(provider, Bytes::mb(48), lanes, config,
                            [&](const net::TransferResult& r) {
                              seconds = r.elapsed().to_seconds();
                              done = true;
                            });
  transfer.start();
  EXPECT_TRUE(world.run_until([&] { return done; }));
  return seconds;
}

struct SweepOutput {
  std::string table;
  std::vector<std::string> metrics;  // per-task snapshots, task order
};

SweepOutput render_sweep(int threads) {
  std::vector<Cell> grid;
  for (int vms = 1; vms <= 3; ++vms) {
    for (std::uint64_t seed : {21u, 22u}) grid.push_back({vms, seed});
  }
  harness::ScenarioRunner runner(threads);
  const auto times = runner.sweep("obs_transfers", grid, cell_transfer_seconds);

  SweepOutput out;
  TextTable t({"VMs", "Seed", "Time s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.add_row({std::to_string(grid[i].vms), std::to_string(grid[i].seed),
               TextTable::num(times[i], 3)});
  }
  out.table = t.render();
  for (const harness::TaskTiming& task : runner.sweeps().back().tasks) {
    out.metrics.push_back(task.metrics_json);
  }
  return out;
}

TEST(ObsDeterminism, MetricSnapshotsIdenticalAcrossThreadCounts) {
  ScopedEnv obs_on("SAGE_OBS", "1");
  const SweepOutput one = render_sweep(1);
  const SweepOutput four = render_sweep(4);
  EXPECT_FALSE(one.table.empty());
  EXPECT_EQ(one.table, four.table);
  ASSERT_EQ(one.metrics.size(), four.metrics.size());
  for (std::size_t i = 0; i < one.metrics.size(); ++i) {
    EXPECT_FALSE(one.metrics[i].empty()) << "task " << i << " collected no metrics";
    EXPECT_EQ(one.metrics[i], four.metrics[i]) << "task " << i;
  }
  // And the obs-on sweep must contain the layers this grid exercises.
  EXPECT_NE(one.metrics[0].find("\"transfer.completed\""), std::string::npos);
  EXPECT_NE(one.metrics[0].find("\"fabric.bytes.moved\""), std::string::npos);
  EXPECT_NE(one.metrics[0].find("\"sim.events.fired\""), std::string::npos);
}

TEST(ObsDeterminism, RepeatedObservedParallelRunsAreIdentical) {
  ScopedEnv obs_on("SAGE_OBS", "1");
  const SweepOutput a = render_sweep(4);
  const SweepOutput b = render_sweep(4);
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(ObsDeterminism, SimResultsIdenticalWithObsOnOrOff) {
  ::unsetenv("SAGE_OBS");
  const SweepOutput off = render_sweep(2);
  std::string on_table;
  {
    ScopedEnv obs_on("SAGE_OBS", "1");
    on_table = render_sweep(2).table;
  }
  // Observability must not perturb the simulation: the rendered results are
  // bit-identical whether or not metrics and traces were collected.
  EXPECT_EQ(off.table, on_table);
  // And with obs off, no task collected anything.
  for (const std::string& m : off.metrics) EXPECT_TRUE(m.empty());
}

TEST(ObsDeterminism, TraceStreamIsReproducible) {
  auto run = [] {
    ScopedEnv obs_on("SAGE_OBS", "1");
    bench::World world(/*seed=*/42);
    auto& provider = *world.provider;
    const auto src = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
    const auto dst = provider.provision(cloud::Region::kWestUS, cloud::VmSize::kSmall);
    bool done = false;
    net::GeoTransfer transfer(provider, Bytes::mb(16),
                              net::direct_lane(src.id, dst.id), net::TransferConfig{},
                              [&](const net::TransferResult&) { done = true; });
    transfer.start();
    EXPECT_TRUE(world.run_until([&] { return done; }));
    EXPECT_NE(world.engine.obs(), nullptr);
    EXPECT_NE(world.engine.obs()->tracer(), nullptr);
    return world.engine.obs()->tracer()->serialize();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("- transfer "), std::string::npos);
  EXPECT_NE(first.find("- transfer.chunk "), std::string::npos);
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace sage
