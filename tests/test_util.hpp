// Shared helpers for the SAGE test suite.
#pragma once

#include <functional>
#include <memory>

#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "simcore/engine.hpp"

namespace sage::testing {

/// A simulation world with a provider on a *stable* topology (no noise,
/// no incidents) so tests can assert analytic expectations.
struct StableWorld {
  sim::SimEngine engine;
  std::unique_ptr<cloud::CloudProvider> provider;

  explicit StableWorld(std::uint64_t seed = 1) {
    provider = std::make_unique<cloud::CloudProvider>(engine, cloud::stable_topology(), seed);
  }
};

/// Same but with the default (variable) topology.
struct NoisyWorld {
  sim::SimEngine engine;
  std::unique_ptr<cloud::CloudProvider> provider;

  explicit NoisyWorld(std::uint64_t seed = 1) {
    provider = std::make_unique<cloud::CloudProvider>(engine, cloud::default_topology(), seed);
  }
};

/// Run the engine until `pred` holds or `budget` simulated time elapses.
/// Returns true when the predicate held.
inline bool run_until(sim::SimEngine& engine, std::function<bool()> pred,
                      SimDuration budget = SimDuration::hours(2)) {
  const SimTime deadline = engine.now() + budget;
  while (!pred()) {
    if (engine.now() >= deadline) return false;
    if (!engine.step()) return false;
  }
  return true;
}

}  // namespace sage::testing
