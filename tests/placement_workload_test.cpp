// Tests for operator placement and the workload generators.
#include <gtest/gtest.h>

#include "baselines/backends.hpp"
#include "core/placement.hpp"
#include "test_util.hpp"
#include "workload/workloads.hpp"

namespace sage {
namespace {

using cloud::Region;
using sage::testing::StableWorld;
using stream::JobGraph;
using stream::SourceSpec;
using stream::VertexKind;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;

TEST(PlacementTest, SingleSiteChainStaysLocal) {
  JobGraph g;
  const auto src = g.add_source("s", kWEU, SourceSpec{});
  const auto f = g.add_operator("f", kNUS,  // deliberately mis-pinned
                                stream::make_filter("f", [](const stream::Record&) {
                                  return true;
                                }));
  const auto sink = g.add_sink("k", kNUS);
  g.connect(src, f);
  g.connect(f, sink);
  core::auto_place(g, kNUS);
  // The filter's only input comes from WEU: it must move there, shrinking
  // the stream before the WAN hop.
  EXPECT_EQ(g.vertex(f).site, kWEU);
  EXPECT_EQ(g.vertex(src).site, kWEU);   // sources never move
  EXPECT_EQ(g.vertex(sink).site, kNUS);  // sinks never move
}

TEST(PlacementTest, MergingOperatorGoesToAggregationSite) {
  JobGraph g;
  const auto s1 = g.add_source("s1", kWEU, SourceSpec{});
  const auto s2 = g.add_source("s2", kNEU, SourceSpec{});
  const auto merge = g.add_operator(
      "m", kWEU,
      stream::make_window_aggregate("m", SimDuration::seconds(10),
                                    stream::AggregateFn::kSum));
  const auto sink = g.add_sink("k", kNUS);
  g.connect(s1, merge);
  g.connect(s2, merge);
  g.connect(merge, sink);
  core::auto_place(g, kNUS);
  EXPECT_EQ(g.vertex(merge).site, kNUS);
}

TEST(PlacementTest, PlacementPropagatesThroughChains) {
  JobGraph g;
  const auto src = g.add_source("s", kWEU, SourceSpec{});
  const auto a = g.add_operator("a", kNUS, stream::make_filter("a", [](const auto&) {
    return true;
  }));
  const auto b = g.add_operator("b", kNUS, stream::make_filter("b", [](const auto&) {
    return true;
  }));
  const auto sink = g.add_sink("k", kNUS);
  g.connect(src, a);
  g.connect(a, b);
  g.connect(b, sink);
  core::auto_place(g, kNUS);
  EXPECT_EQ(g.vertex(a).site, kWEU);
  EXPECT_EQ(g.vertex(b).site, kWEU);
}

TEST(PlacementTest, LocalityReducesEstimatedWanBytes) {
  auto build = [](bool good_placement) {
    JobGraph g;
    SourceSpec spec;
    spec.records_per_sec = 1000.0;
    spec.record_size = Bytes::of(200);
    const auto src = g.add_source("s", kWEU, spec);
    const auto agg = g.add_operator(
        "w", good_placement ? kWEU : kNUS,
        stream::make_window_aggregate("w", SimDuration::seconds(10),
                                      stream::AggregateFn::kMean));
    const auto sink = g.add_sink("k", kNUS);
    g.connect(src, agg);
    g.connect(agg, sink);
    return g;
  };
  const double bad = core::estimate_wan_bytes_per_sec(build(false));
  const double good = core::estimate_wan_bytes_per_sec(build(true));
  EXPECT_LT(good, bad * 0.2);
}

TEST(WorkloadTest, SensorGridGraphShape) {
  workload::SensorGridParams params;
  params.sites = {kNEU, kWEU, kNUS};
  params.aggregation_site = kNUS;
  const JobGraph g = workload::make_sensor_grid_job(params);
  int sources = 0;
  int sinks = 0;
  for (const auto& v : g.vertices()) {
    sources += v.kind == VertexKind::kSource ? 1 : 0;
    sinks += v.kind == VertexKind::kSink ? 1 : 0;
  }
  EXPECT_EQ(sources, 3);
  EXPECT_EQ(sinks, 1);
  // One WAN edge per non-aggregation site (the NUS site is local).
  EXPECT_EQ(g.wan_edges().size(), 2u);
}

TEST(WorkloadTest, ClickstreamGraphValidates) {
  workload::ClickstreamParams params;
  const JobGraph g = workload::make_clickstream_job(params);
  EXPECT_NO_THROW(g.validate());
  EXPECT_GE(g.wan_edges().size(), 2u);
}

TEST(WorkloadTest, MetaReduceMovesEveryFile) {
  StableWorld world;
  baselines::GatewayPool pool(*world.provider);
  baselines::DirectBackend backend(pool);
  workload::MetaReduceParams params;
  params.sites = {kNEU, kWEU};
  params.reducer_site = kNUS;
  params.files_per_site = 40;
  params.file_size = Bytes::kb(100);
  params.concurrency_per_site = 4;

  bool done = false;
  workload::MetaReduceResult result{};
  workload::run_metareduce(world.engine, backend, params,
                           [&](const workload::MetaReduceResult& r) {
                             result = r;
                             done = true;
                           });
  ASSERT_TRUE(sage::testing::run_until(world.engine, [&] { return done; },
                                       SimDuration::hours(12)));
  EXPECT_EQ(result.files_moved, 80u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(result.total_time.to_seconds(), 1.0);
}

TEST(WorkloadTest, MetaReduceConcurrencyShortensTime) {
  auto run = [](int concurrency) {
    StableWorld world;
    baselines::GatewayPool pool(*world.provider);
    baselines::DirectBackend backend(pool);
    workload::MetaReduceParams params;
    params.sites = {kNEU};
    params.reducer_site = kNUS;
    params.files_per_site = 30;
    params.file_size = Bytes::kb(500);
    params.concurrency_per_site = concurrency;
    bool done = false;
    workload::MetaReduceResult result{};
    workload::run_metareduce(world.engine, backend, params,
                             [&](const workload::MetaReduceResult& r) {
                               result = r;
                               done = true;
                             });
    EXPECT_TRUE(sage::testing::run_until(world.engine, [&] { return done; },
                                         SimDuration::hours(12)));
    return result.total_time;
  };
  EXPECT_GT(run(1), run(8) * 1.5);
}

}  // namespace
}  // namespace sage
