// Tests for the streaming layer: operators, job graphs, and the single-site
// runtime behaviour (queueing, windows, latency accounting).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "stream/graph.hpp"
#include "stream/operator.hpp"
#include "stream/runtime.hpp"
#include "test_util.hpp"

namespace sage::stream {
namespace {

using cloud::Region;
using sage::testing::StableWorld;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kNUS = Region::kNorthUS;

Record make_record(double value, std::uint64_t key = 0,
                   SimTime t = SimTime::epoch()) {
  Record r;
  r.event_time = t;
  r.key = key;
  r.value = value;
  r.wire_size = Bytes::of(100);
  return r;
}

TEST(RecordBatchTest, TracksSizeAndBytes) {
  RecordBatch b;
  EXPECT_TRUE(b.empty());
  b.add(make_record(1.0));
  b.add(make_record(2.0));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.wire_size(), Bytes::of(200));
  RecordBatch c;
  c.add(make_record(3.0));
  b.append(c);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.wire_size(), Bytes::of(300));
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.wire_size().is_zero());
}

TEST(MapOperatorTest, TransformsEveryRecord) {
  auto op = make_map("double", [](const Record& r) {
    Record out = r;
    out.value = r.value * 2.0;
    return out;
  });
  RecordBatch in;
  in.add(make_record(1.0));
  in.add(make_record(2.5));
  RecordBatch out;
  op->process(0, in, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.row(0).value, 2.0);
  EXPECT_DOUBLE_EQ(out.row(1).value, 5.0);
}

TEST(FilterOperatorTest, DropsNonMatching) {
  auto op = make_filter("pos", [](const Record& r) { return r.value > 0.0; });
  RecordBatch in;
  in.add(make_record(1.0));
  in.add(make_record(-1.0));
  in.add(make_record(2.0));
  RecordBatch out;
  op->process(0, in, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(WindowAggregateTest, EmitsPerKeyAggregatesOnTimer) {
  WindowAggregateOperator op("sum", SimDuration::seconds(10), AggregateFn::kSum);
  RecordBatch in;
  in.add(make_record(1.0, /*key=*/1));
  in.add(make_record(2.0, /*key=*/1));
  in.add(make_record(5.0, /*key=*/2));
  RecordBatch none;
  op.process(0, in, none);
  EXPECT_TRUE(none.empty());  // nothing emitted before the window closes
  EXPECT_EQ(op.active_keys(), 2u);

  RecordBatch out;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out);
  ASSERT_EQ(out.size(), 2u);
  double sum1 = 0.0;
  double sum2 = 0.0;
  for (const Record& r : out.rows()) {
    if (r.key == 1) sum1 = r.value;
    if (r.key == 2) sum2 = r.value;
  }
  EXPECT_DOUBLE_EQ(sum1, 3.0);
  EXPECT_DOUBLE_EQ(sum2, 5.0);
  EXPECT_EQ(op.active_keys(), 0u);  // window state flushed
}

TEST(WindowAggregateTest, AllAggregateFunctions) {
  const std::vector<double> values = {2.0, 8.0, 4.0};
  auto run = [&](AggregateFn fn) {
    WindowAggregateOperator op("agg", SimDuration::seconds(1), fn);
    RecordBatch in;
    for (double v : values) in.add(make_record(v, 7));
    RecordBatch none;
    op.process(0, in, none);
    RecordBatch out;
    op.on_timer(SimTime::epoch() + SimDuration::seconds(1), out);
    EXPECT_EQ(out.size(), 1u);
    return out.row(0).value;
  };
  EXPECT_DOUBLE_EQ(run(AggregateFn::kSum), 14.0);
  EXPECT_DOUBLE_EQ(run(AggregateFn::kCount), 3.0);
  EXPECT_DOUBLE_EQ(run(AggregateFn::kMean), 14.0 / 3.0);
  EXPECT_DOUBLE_EQ(run(AggregateFn::kMin), 2.0);
  EXPECT_DOUBLE_EQ(run(AggregateFn::kMax), 8.0);
}

TEST(WindowAggregateTest, OutputCarriesOldestEventTime) {
  WindowAggregateOperator op("sum", SimDuration::seconds(10), AggregateFn::kSum);
  RecordBatch in;
  in.add(make_record(1.0, 1, SimTime::epoch() + SimDuration::seconds(5)));
  in.add(make_record(1.0, 1, SimTime::epoch() + SimDuration::seconds(2)));
  RecordBatch none;
  op.process(0, in, none);
  RecordBatch out;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).event_time, SimTime::epoch() + SimDuration::seconds(2));
}

TEST(WindowJoinTest, MatchesAcrossPorts) {
  WindowJoinOperator op("join", SimDuration::seconds(30),
                        [](double l, double r) { return l + r; });
  RecordBatch left;
  left.add(make_record(1.0, 42));
  RecordBatch out;
  op.process(0, left, out);
  EXPECT_TRUE(out.empty());  // no right side yet
  RecordBatch right;
  right.add(make_record(10.0, 42));
  right.add(make_record(10.0, 99));  // unmatched key
  op.process(1, right, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.row(0).value, 11.0);
  EXPECT_EQ(out.row(0).key, 42u);
}

TEST(WindowJoinTest, TimerExpiresOldState) {
  WindowJoinOperator op("join", SimDuration::seconds(10),
                        [](double l, double r) { return l + r; });
  RecordBatch left;
  left.add(make_record(1.0, 1, SimTime::epoch()));
  RecordBatch out;
  op.process(0, left, out);
  EXPECT_EQ(op.buffered(), 1u);
  op.on_timer(SimTime::epoch() + SimDuration::seconds(60), out);
  EXPECT_EQ(op.buffered(), 0u);
  // A late right-side record no longer matches.
  RecordBatch right;
  right.add(make_record(2.0, 1, SimTime::epoch() + SimDuration::seconds(60)));
  op.process(1, right, out);
  EXPECT_TRUE(out.empty());
}

TEST(RecordBatchTest, MoveAppendStealsOrCopies) {
  // Steal path: appending into an empty batch swaps column buffers.
  RecordBatch a;
  a.add(make_record(1.0));
  a.add(make_record(2.0));
  const double* old_data = a.values().data();
  RecordBatch b;
  b.append(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.wire_size(), Bytes::of(200));
  EXPECT_EQ(b.values().data(), old_data);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.wire_size().is_zero());

  // Copy path: appending into a non-empty batch keeps the destination
  // buffer and still clears the source — which must RETAIN its capacity so
  // the runtime can recycle it into the batch pool.
  RecordBatch c;
  c.add(make_record(3.0));
  c.append(std::move(b));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.wire_size(), Bytes::of(300));
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.wire_size().is_zero());
  EXPECT_GT(b.capacity(), 0u);
}

TEST(RecordBatchTest, MoveAppendLeavesSourceRecyclable) {
  // The steal path hands the source this batch's old buffers: move-append
  // a full batch into an empty-but-reserved one and the full batch should
  // come back holding the reserved capacity, not zero.
  RecordBatch pooled;
  pooled.reserve(64);
  RecordBatch incoming;
  incoming.add(make_record(1.0));
  pooled.append(std::move(incoming));
  EXPECT_EQ(pooled.size(), 1u);
  EXPECT_TRUE(incoming.empty());
  EXPECT_GE(incoming.capacity(), 64u);
}

TEST(RecordBatchTest, CompactKeepsMaskedRowsAndWireTotal) {
  RecordBatch b;
  for (int i = 0; i < 6; ++i) {
    b.add(make_record(static_cast<double>(i), static_cast<std::uint64_t>(i)));
  }
  const std::vector<std::uint8_t> keep = {1, 0, 1, 0, 0, 1};
  b.compact(keep.data());
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b.row(0).value, 0.0);
  EXPECT_DOUBLE_EQ(b.row(1).value, 2.0);
  EXPECT_DOUBLE_EQ(b.row(2).value, 5.0);
  EXPECT_EQ(b.row(2).key, 5u);
  EXPECT_EQ(b.wire_size(), Bytes::of(300));
  EXPECT_EQ(b.recompute_wire_size(), Bytes::of(300));
}

// ---------------------------------------------------------------------------
// Edge cases: empty batches and timers that fire before any data.
// ---------------------------------------------------------------------------

TEST(OperatorEdgeCaseTest, EmptyInputBatchIsHarmless) {
  const RecordBatch empty;
  auto check = [&](const std::shared_ptr<Operator>& op) {
    RecordBatch out;
    op->process(0, empty, out);
    EXPECT_TRUE(out.empty()) << op->name();
    RecordBatch owned;
    RecordBatch out2;
    op->process_batch(0, std::move(owned), out2);
    EXPECT_TRUE(out2.empty()) << op->name();
  };
  check(make_map("m", [](const Record& r) { return r; }));
  check(make_filter("f", [](const Record&) { return true; }));
  check(make_window_aggregate("w", SimDuration::seconds(1), AggregateFn::kSum));
  check(make_window_join("j", SimDuration::seconds(1),
                         [](double l, double r) { return l + r; }));
  check(make_sliding_window_aggregate("s", SimDuration::seconds(4),
                                      SimDuration::seconds(1), AggregateFn::kMax));
  check(make_top_k("t", SimDuration::seconds(1), 3));
  std::vector<StatelessStage> stages;
  ASSERT_TRUE(make_map("m", [](const Record& r) { return r; })->collect_stages(stages));
  check(make_fused("fused", std::move(stages)));
}

TEST(OperatorEdgeCaseTest, TimerBeforeAnyDataEmitsNothing) {
  const SimTime later = SimTime::epoch() + SimDuration::seconds(30);
  for (const auto& op :
       {make_window_aggregate("w", SimDuration::seconds(1), AggregateFn::kSum),
        make_window_join("j", SimDuration::seconds(1),
                         [](double l, double r) { return l + r; }),
        make_sliding_window_aggregate("s", SimDuration::seconds(4),
                                      SimDuration::seconds(1), AggregateFn::kMin),
        make_top_k("t", SimDuration::seconds(1), 3)}) {
    RecordBatch out;
    op->on_timer(later, out);
    EXPECT_TRUE(out.empty()) << op->name();
  }
}

TEST(TopKTest, TieBreaksTowardSmallerKeyRegardlessOfArrivalOrder) {
  // Three keys with identical weights, fed in descending key order; k=2
  // must still pick the two smallest keys.
  TopKOperator op("top", SimDuration::seconds(10), /*k=*/2);
  RecordBatch in;
  for (std::uint64_t key : {9u, 5u, 2u}) {
    in.add(make_record(1.0, key));
    in.add(make_record(1.0, key));
  }
  RecordBatch none;
  op.process(0, in, none);
  EXPECT_TRUE(none.empty());
  RecordBatch out;
  op.on_timer(SimTime::epoch() + SimDuration::seconds(10), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.row(0).key, 2u);
  EXPECT_EQ(out.row(1).key, 5u);
  EXPECT_DOUBLE_EQ(out.row(0).value, 2.0);  // count of key 2

  // Same weights arriving in ascending order give the identical result.
  TopKOperator op2("top", SimDuration::seconds(10), /*k=*/2);
  RecordBatch in2;
  for (std::uint64_t key : {2u, 5u, 9u}) {
    in2.add(make_record(1.0, key));
    in2.add(make_record(1.0, key));
  }
  op2.process(0, in2, none);
  RecordBatch out2;
  op2.on_timer(SimTime::epoch() + SimDuration::seconds(10), out2);
  ASSERT_EQ(out2.size(), 2u);
  EXPECT_EQ(out2.row(0).key, 2u);
  EXPECT_EQ(out2.row(1).key, 5u);
}

// ---------------------------------------------------------------------------
// Graph construction and validation.
// ---------------------------------------------------------------------------

TEST(JobGraphTest, BuildAndInspect) {
  JobGraph g;
  const auto src = g.add_source("s", kNEU, SourceSpec{});
  const auto op = g.add_operator("f", kNEU, make_filter("f", [](const Record&) {
    return true;
  }));
  const auto sink = g.add_sink("k", kNUS);
  g.connect(src, op);
  g.connect(op, sink);
  g.validate();
  EXPECT_EQ(g.vertices().size(), 3u);
  EXPECT_EQ(g.out_edges(src).size(), 1u);
  EXPECT_EQ(g.wan_edges().size(), 1u);  // op(NEU) -> sink(NUS)
  const auto sites = g.sites_used();
  EXPECT_EQ(sites.size(), 2u);
}

TEST(JobGraphTest, ValidateRejectsCycles) {
  JobGraph g;
  const auto a = g.add_operator("a", kNEU, make_filter("a", [](const Record&) {
    return true;
  }));
  const auto b = g.add_operator("b", kNEU, make_filter("b", [](const Record&) {
    return true;
  }));
  g.connect(a, b);
  g.connect(b, a);
  EXPECT_THROW(g.validate(), CheckFailure);
}

TEST(JobGraphTest, ValidateRejectsEdgesIntoSources) {
  JobGraph g;
  const auto s = g.add_source("s", kNEU, SourceSpec{});
  const auto op = g.add_operator("o", kNEU, make_filter("o", [](const Record&) {
    return true;
  }));
  g.connect(op, s);
  EXPECT_THROW(g.validate(), CheckFailure);
}

TEST(JobGraphTest, ValidateRejectsPortOneOnNonJoin) {
  JobGraph g;
  const auto s = g.add_source("s", kNEU, SourceSpec{});
  const auto op = g.add_operator("o", kNEU, make_filter("o", [](const Record&) {
    return true;
  }));
  g.connect(s, op, /*port=*/1);
  EXPECT_THROW(g.validate(), CheckFailure);
}

TEST(JobGraphTest, PortOneValidOnJoin) {
  JobGraph g;
  const auto s1 = g.add_source("s1", kNEU, SourceSpec{});
  const auto s2 = g.add_source("s2", kNEU, SourceSpec{});
  const auto j = g.add_operator(
      "j", kNEU, make_window_join("j", SimDuration::seconds(10),
                                  [](double l, double r) { return l * r; }));
  const auto sink = g.add_sink("k", kNEU);
  g.connect(s1, j, 0);
  g.connect(s2, j, 1);
  g.connect(j, sink);
  EXPECT_NO_THROW(g.validate());
}

// ---------------------------------------------------------------------------
// Single-site runtime end-to-end.
// ---------------------------------------------------------------------------

/// Backend that must never be called for a single-site job.
struct NeverBackend final : TransferBackend {
  void send(Region, Region, Bytes, DoneFn) override {
    FAIL() << "single-site job must not touch the WAN";
  }
  [[nodiscard]] std::string_view name() const override { return "never"; }
};

TEST(StreamRuntimeTest, LocalPipelineDeliversRecords) {
  StableWorld world;
  JobGraph g;
  SourceSpec spec;
  spec.records_per_sec = 1000.0;
  spec.emit_interval = SimDuration::millis(100);
  const auto src = g.add_source("s", kNEU, spec);
  const auto filter = g.add_operator(
      "f", kNEU, make_filter("f", [](const Record& r) { return r.key % 2 == 0; }));
  const auto sink = g.add_sink("k", kNEU);
  g.connect(src, filter);
  g.connect(filter, sink);

  NeverBackend backend;
  StreamRuntime runtime(*world.provider, g, backend, RuntimeConfig{});
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(10));
  const SinkStats& stats = runtime.sink_stats(sink);
  // ~10k records emitted, about half pass the filter.
  EXPECT_GT(stats.records, 3000u);
  EXPECT_LT(stats.records, 7000u);
  EXPECT_GT(stats.latency_ms.count(), 0u);
  // Local pipeline latency is milliseconds, not seconds.
  EXPECT_LT(stats.latency_ms.quantile(0.5), 1000.0);
  runtime.stop();
}

TEST(StreamRuntimeTest, WindowedAggregationReducesVolume) {
  StableWorld world;
  JobGraph g;
  SourceSpec spec;
  spec.records_per_sec = 2000.0;
  spec.key_count = 10;
  const auto src = g.add_source("s", kNEU, spec);
  const auto agg = g.add_operator(
      "w", kNEU,
      make_window_aggregate("w", SimDuration::seconds(5), AggregateFn::kMean));
  const auto sink = g.add_sink("k", kNEU);
  g.connect(src, agg);
  g.connect(agg, sink);

  NeverBackend backend;
  StreamRuntime runtime(*world.provider, g, backend, RuntimeConfig{});
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(30));
  const SinkStats& stats = runtime.sink_stats(sink);
  // 6 windows x <=10 keys: drastic reduction from ~60k source records.
  EXPECT_GT(stats.records, 20u);
  EXPECT_LE(stats.records, 80u);
  runtime.stop();
}

TEST(StreamRuntimeTest, StopReleasesVms) {
  StableWorld world;
  JobGraph g;
  const auto src = g.add_source("s", kNEU, SourceSpec{});
  const auto sink = g.add_sink("k", kNEU);
  g.connect(src, sink);
  NeverBackend backend;
  StreamRuntime runtime(*world.provider, g, backend, RuntimeConfig{});
  runtime.start();
  EXPECT_EQ(world.provider->active_vm_count(), 1u);
  world.engine.run_until(world.engine.now() + SimDuration::seconds(5));
  runtime.stop();
  EXPECT_EQ(world.provider->active_vm_count(), 0u);
}

TEST(StreamRuntimeTest, QueueDepthVisibleUnderOverload) {
  StableWorld world;
  JobGraph g;
  SourceSpec spec;
  spec.records_per_sec = 50000.0;
  const auto src = g.add_source("s", kNEU, spec);
  // An absurdly expensive operator to force backpressure.
  const auto heavy = g.add_operator(
      "heavy", kNEU,
      make_map("heavy", [](const Record& r) { return r; }, /*cost=*/500.0));
  const auto sink = g.add_sink("k", kNEU);
  g.connect(src, heavy);
  g.connect(heavy, sink);

  NeverBackend backend;
  StreamRuntime runtime(*world.provider, g, backend, RuntimeConfig{});
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(20));
  EXPECT_GT(runtime.queue_depth(heavy), 0u);
  runtime.stop();
}

}  // namespace
}  // namespace sage::stream
