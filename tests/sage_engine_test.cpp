// Tests for the SAGE engine: deployment, monitored sends, tradeoffs,
// adaptation and decision records.
#include "core/sage.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "test_util.hpp"

namespace sage::core {
namespace {

using cloud::Region;
using sage::testing::NoisyWorld;
using sage::testing::StableWorld;
using sage::testing::run_until;
using stream::SendOutcome;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;
constexpr Region kEUS = Region::kEastUS;

SageConfig quick_config() {
  SageConfig config;
  config.regions = {kNEU, kWEU, kEUS, kNUS};
  config.helpers_per_region = 4;
  config.monitoring.probe_interval = SimDuration::minutes(1);
  return config;
}

struct SageFixture : public ::testing::Test {
  StableWorld world;

  std::unique_ptr<SageEngine> deployed(SageConfig config = quick_config(),
                                       SimDuration warmup = SimDuration::minutes(15)) {
    auto engine = std::make_unique<SageEngine>(*world.provider, config);
    engine->deploy();
    world.engine.run_until(world.engine.now() + warmup);
    return engine;
  }

  SendOutcome send(SageEngine& engine, Bytes size, Region src = kNEU,
                   Region dst = kNUS) {
    SendOutcome out{};
    bool done = false;
    engine.send(src, dst, size, [&](const SendOutcome& o) {
      out = o;
      done = true;
    });
    EXPECT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(12)));
    return out;
  }
};

TEST_F(SageFixture, DeployStartsMonitoringAllPairs) {
  auto engine = deployed();
  const auto matrix = engine->monitoring().snapshot();
  for (Region a : {kNEU, kWEU, kEUS, kNUS}) {
    for (Region b : {kNEU, kWEU, kEUS, kNUS}) {
      if (a == b) continue;
      EXPECT_TRUE(matrix.at(a, b).ready());
    }
  }
}

TEST_F(SageFixture, SendMovesDataAndRecordsDecision) {
  auto engine = deployed();
  const SendOutcome o = send(*engine, Bytes::mb(50));
  EXPECT_TRUE(o.ok);
  ASSERT_EQ(engine->history().size(), 1u);
  const SendRecord& rec = engine->history()[0];
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.size, Bytes::mb(50));
  EXPECT_TRUE(rec.estimate.has_value());
  EXPECT_GE(rec.lanes_used, 1);
  EXPECT_EQ(rec.stats.chunks_delivered, rec.stats.chunks_total);
}

TEST_F(SageFixture, ColdStartFallsBackToDirect) {
  SageConfig config = quick_config();
  auto engine = std::make_unique<SageEngine>(*world.provider, config);
  engine->deploy();
  // No warmup at all: the map is empty; SAGE must still deliver.
  const SendOutcome o = send(*engine, Bytes::mb(5));
  EXPECT_TRUE(o.ok);
  ASSERT_EQ(engine->history().size(), 1u);
  EXPECT_FALSE(engine->history()[0].estimate.has_value());
  EXPECT_EQ(engine->history()[0].lanes_used, 1);
}

TEST_F(SageFixture, FastTradeoffUsesMoreLanesThanCheap) {
  auto engine = deployed();
  model::Tradeoff fast = model::Tradeoff::fastest();
  model::Tradeoff cheap = model::Tradeoff::cheapest();

  SendOutcome out_fast{};
  bool done_fast = false;
  engine->send_with(fast, kNEU, kNUS, Bytes::mb(100), [&](const SendOutcome& o) {
    out_fast = o;
    done_fast = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done_fast; }, SimDuration::hours(4)));

  SendOutcome out_cheap{};
  bool done_cheap = false;
  engine->send_with(cheap, kNEU, kNUS, Bytes::mb(100), [&](const SendOutcome& o) {
    out_cheap = o;
    done_cheap = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done_cheap; }, SimDuration::hours(4)));

  ASSERT_TRUE(out_fast.ok && out_cheap.ok);
  const auto& history = engine->history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_GT(history[0].lanes_used, history[1].lanes_used);
  EXPECT_LT(out_fast.elapsed, out_cheap.elapsed);
}

TEST_F(SageFixture, BudgetCapLimitsNodes) {
  auto engine = deployed();
  // Derive a budget that separates the frontier: affordable at n=2, too
  // expensive from n=3 up (egress dominates, so the window is narrow and
  // must be computed from the model, not guessed).
  model::TradeoffInputs inputs;
  inputs.size = Bytes::gb(1);
  inputs.link = engine->monitoring().estimate(kNEU, kNUS);
  inputs.src = kNEU;
  inputs.dst = kNUS;
  inputs.max_nodes = 1 + engine->config().helpers_per_region;
  const model::TradeoffSolver solver(engine->cost_model());
  const auto frontier = solver.frontier(inputs);
  ASSERT_GE(frontier.size(), 3u);
  const Money budget = (frontier[1].total_cost() + frontier[2].total_cost()) * 0.5;

  model::Tradeoff tight = model::Tradeoff::within_budget(budget);
  SendOutcome out{};
  bool done = false;
  engine->send_with(tight, kNEU, kNUS, Bytes::gb(1), [&](const SendOutcome& o) {
    out = o;
    done = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(12)));
  ASSERT_TRUE(out.ok);
  const SendRecord& rec = engine->history()[0];
  ASSERT_TRUE(rec.estimate.has_value());
  EXPECT_LE(rec.estimate->total_cost(), budget);
  EXPECT_LE(rec.estimate->nodes, 2);
}

TEST_F(SageFixture, PredictionMatchesAchievedOnStableFabric) {
  auto engine = deployed();
  const SendOutcome o = send(*engine, Bytes::mb(200));
  ASSERT_TRUE(o.ok);
  const SendRecord& rec = engine->history()[0];
  ASSERT_TRUE(rec.estimate.has_value());
  // On a noise-free fabric the model should land within a factor ~2 of the
  // achieved time (the model is deliberately simple; 10-15% error is the
  // calibrated expectation on the real trace, see Fig 3).
  const double predicted = rec.estimate->time.to_seconds();
  const double achieved = rec.elapsed.to_seconds();
  EXPECT_LT(std::abs(predicted - achieved) / achieved, 1.0)
      << "predicted " << predicted << "s achieved " << achieved << "s";
}

TEST_F(SageFixture, AchievedRateFeedsBackIntoMap) {
  auto engine = deployed();
  const auto before = engine->monitoring().estimate(kNEU, kNUS).samples;
  (void)send(*engine, Bytes::mb(50));
  const auto after = engine->monitoring().estimate(kNEU, kNUS).samples;
  EXPECT_GT(after, before);
}

TEST_F(SageFixture, ShutdownReleasesEverything) {
  auto engine = deployed();
  (void)send(*engine, Bytes::mb(10));
  EXPECT_GT(world.provider->active_vm_count(), 0u);
  engine->shutdown();
  EXPECT_EQ(world.provider->active_vm_count(), 0u);
}

TEST_F(SageFixture, SendBeforeDeployThrows) {
  SageEngine engine(*world.provider, quick_config());
  EXPECT_THROW(engine.send(kNEU, kNUS, Bytes::mb(1), [](const SendOutcome&) {}),
               CheckFailure);
}

TEST_F(SageFixture, ConcurrentSendsAllComplete) {
  auto engine = deployed();
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    engine->send(kNEU, kNUS, Bytes::mb(10), [&](const SendOutcome& o) {
      EXPECT_TRUE(o.ok);
      ++done;
    });
  }
  ASSERT_TRUE(run_until(world.engine, [&] { return done == 4; }, SimDuration::hours(6)));
  EXPECT_EQ(engine->history().size(), 4u);
}

TEST(SageAdaptationTest, ReplansWhenMapShiftsMidTransfer) {
  // Deterministic adaptation check: mid-transfer, the monitoring map
  // learns that a relay route got dramatically better; the decision
  // manager must swap lane sets in place. LastSample estimation makes the
  // map shift immediate (WSI would phase it in over many samples).
  StableWorld world;
  SageConfig config;
  config.regions = {kNEU, kEUS, kNUS};
  config.helpers_per_region = 3;
  config.monitoring.kind = monitor::EstimatorKind::kLastSample;
  config.monitoring.probe_interval = SimDuration::minutes(1);
  config.adapt_interval = SimDuration::seconds(2);
  config.replan_threshold = 0.10;
  SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  bool done = false;
  engine.send(kNEU, kNUS, Bytes::mb(200), [&](const SendOutcome& o) {
    EXPECT_TRUE(o.ok);
    done = true;
  });
  world.engine.schedule_after(SimDuration::seconds(5), [&] {
    engine.monitoring().report_transfer_observation(kNEU, kEUS,
                                                    ByteRate::mb_per_sec(40.0));
    engine.monitoring().report_transfer_observation(kEUS, kNUS,
                                                    ByteRate::mb_per_sec(40.0));
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(6)));
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_GT(engine.history()[0].replans, 0);
}

TEST_F(SageFixture, ReplanSweepSkipsTransfersWithUnchangedEpoch) {
  auto engine = deployed();
  bool done = false;
  engine->send(kNEU, kNUS, Bytes::gb(2), [&](const SendOutcome&) { done = true; });
  engine->monitoring().stop();  // freeze the sample epoch
  const std::uint64_t skipped_before = engine->replans_skipped();
  // No sample landed since the send planned against the map: the sweep
  // must skip the transfer on an epoch compare, not re-run the planner.
  EXPECT_EQ(engine->replan_sweep(), 0u);
  EXPECT_EQ(engine->replan_sweep(), 0u);
  EXPECT_EQ(engine->replans_skipped(), skipped_before + 2);
  // A fresh sample moves the epoch; the next sweep re-evaluates.
  engine->monitoring().report_transfer_observation(kNEU, kNUS,
                                                   ByteRate::mb_per_sec(12.0));
  EXPECT_EQ(engine->replan_sweep(), 1u);
  EXPECT_EQ(engine->replans_skipped(), skipped_before + 2);
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(12)));
}

TEST_F(SageFixture, ControlPlaneMemosCollapseIdenticalDecisions) {
  auto engine = deployed();
  engine->monitoring().stop();  // freeze the epoch across the batch
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    engine->send(kNEU, kNUS, Bytes::mb(10), [&](const SendOutcome& o) {
      EXPECT_TRUE(o.ok);
      ++done;
    });
  }
  // One real solver/planner run; the other three sends hit the memos.
  EXPECT_EQ(engine->resolve_cache().misses(), 1u);
  EXPECT_EQ(engine->resolve_cache().hits(), 3u);
  EXPECT_EQ(engine->plan_cache().misses(), 1u);
  EXPECT_EQ(engine->plan_cache().hits(), 3u);
  ASSERT_TRUE(run_until(world.engine, [&] { return done == 4; }, SimDuration::hours(6)));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(engine->history()[i].lanes_used, engine->history()[0].lanes_used);
    ASSERT_TRUE(engine->history()[i].estimate.has_value());
    EXPECT_EQ(engine->history()[i].estimate->nodes, engine->history()[0].estimate->nodes);
  }
}

TEST(SageCacheDifferentialTest, MemoizedAndUnmemoizedRunsAgreeExactly) {
  // The whole control-plane cache stack (estimator stats, snapshot cache,
  // plan/resolve memos, sweep epoch skip) is value-preserving: two
  // otherwise-identical simulations must take every decision identically,
  // down to exact completion times.
  auto run = [](bool memoize) {
    StableWorld world;
    SageConfig config;
    config.regions = {kNEU, kWEU, kEUS, kNUS};
    config.helpers_per_region = 4;
    config.monitoring.probe_interval = SimDuration::minutes(1);
    config.memoize_control = memoize;
    config.monitoring.cache_snapshot = memoize;
    config.monitoring.estimator.cache_stats = memoize;
    SageEngine engine(*world.provider, config);
    engine.deploy();
    world.engine.run_until(world.engine.now() + SimDuration::minutes(15));
    int done = 0;
    for (int i = 0; i < 3; ++i) {
      engine.send(kNEU, kNUS, Bytes::mb(40), [&](const SendOutcome& o) {
        EXPECT_TRUE(o.ok);
        ++done;
      });
    }
    EXPECT_TRUE(
        run_until(world.engine, [&] { return done == 3; }, SimDuration::hours(6)));
    std::vector<std::tuple<double, int, int>> decisions;
    for (const SendRecord& r : engine.history()) {
      decisions.emplace_back(r.elapsed.to_seconds(), r.lanes_used, r.replans);
    }
    return decisions;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace sage::core
