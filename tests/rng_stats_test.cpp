// Tests for the deterministic RNG and the online-statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace sage {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child1.next_u64(), parent1.next_u64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(42);
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(42);
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(42);
  int low = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto k = rng.zipf(1000, 1.2);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 1000);
    if (k < 10) ++low;
  }
  // With skew 1.2, the first 10 of 1000 keys should dominate.
  EXPECT_GT(low, n / 4);
}

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(OnlineStatsTest, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(EwmaTest, SeedsWithFirstAndTracks) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(SampleSetTest, QuantilesInterpolate) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
}

TEST(SampleSetTest, Ci95ShrinksWithSamples) {
  SampleSet small;
  SampleSet large;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 9
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
}

}  // namespace
}  // namespace sage
