// Failure-injection and resilience scenarios across module boundaries.
#include <gtest/gtest.h>

#include "core/sage.hpp"
#include "stream/operator.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

using cloud::Region;
using cloud::VmSize;
using sage::testing::StableWorld;
using sage::testing::run_until;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;

TEST(MonitoringResilienceTest, AgentFailureStopsProbesWithoutCrashing) {
  StableWorld world;
  auto& provider = *world.provider;
  monitor::MonitorConfig config;
  config.probe_interval = SimDuration::minutes(1);
  monitor::MonitoringService service(provider, config);
  const auto a = provider.provision(kNEU, VmSize::kSmall);
  const auto b = provider.provision(kNUS, VmSize::kSmall);
  service.register_agent(kNEU, a.id);
  service.register_agent(kNUS, b.id);
  service.start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
  const auto before = service.estimate(kNEU, kNUS);
  ASSERT_TRUE(before.ready());

  provider.fail_vm(b.id);
  world.engine.run_until(world.engine.now() + SimDuration::minutes(20));
  // No new samples (the dead agent cannot receive probes), no crash, and
  // the last known estimate remains queryable.
  const auto after = service.estimate(kNEU, kNUS);
  EXPECT_EQ(after.samples, before.samples);
  EXPECT_GT(after.mean_mbps, 0.0);
}

TEST(MonitoringResilienceTest, ReplacementAgentResumesProbing) {
  StableWorld world;
  auto& provider = *world.provider;
  monitor::MonitorConfig config;
  config.probe_interval = SimDuration::minutes(1);
  monitor::MonitoringService service(provider, config);
  const auto a = provider.provision(kNEU, VmSize::kSmall);
  const auto b = provider.provision(kNUS, VmSize::kSmall);
  service.register_agent(kNEU, a.id);
  service.register_agent(kNUS, b.id);
  service.start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(5));
  provider.fail_vm(b.id);
  world.engine.run_until(world.engine.now() + SimDuration::minutes(5));
  const auto stalled = service.estimate(kNEU, kNUS).samples;

  // The deployment replaces the dead agent; probing must pick back up.
  service.register_agent(kNUS, provider.provision(kNUS, VmSize::kSmall).id);
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
  EXPECT_GT(service.estimate(kNEU, kNUS).samples, stalled);
}

TEST(SageResilienceTest, HelperFailureMidTransferStillDelivers) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kWEU, kNUS};
  config.helpers_per_region = 3;
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  bool done = false;
  bool ok = false;
  engine.send(kNEU, kNUS, Bytes::mb(200), [&](const stream::SendOutcome& o) {
    ok = o.ok;
    done = true;
  });
  // Kill one of the engine's helper VMs mid-flight. The transfer must
  // re-route its chunks through the surviving lanes.
  world.engine.schedule_after(SimDuration::seconds(5), [&] {
    auto& provider = *world.provider;
    // Find an active Small VM in NEU that is not the gateway (the gateway
    // is the oldest NEU VM, provisioned at deploy()).
    bool first_neu_seen = false;
    for (cloud::VmId id = 0; id < provider.vm_count(); ++id) {
      if (!provider.is_active(id)) continue;
      const auto& vm = provider.vm(id);
      if (vm.region != kNEU) continue;
      if (!first_neu_seen) {
        first_neu_seen = true;  // the gateway/agent: spare it
        continue;
      }
      provider.fail_vm(id);
      break;
    }
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(6)));
  EXPECT_TRUE(ok);
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_GT(engine.history()[0].stats.hop_failures, 0);
}

TEST(StreamResilienceTest, WanBackendFailureDoesNotStallJob) {
  // A streaming job whose WAN backend loses its destination gateway: the
  // affected batches are counted as failures and the job keeps running.
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kNUS};
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(5));

  stream::JobGraph g;
  stream::SourceSpec spec;
  spec.records_per_sec = 2000.0;
  const auto src = g.add_source("s", kNEU, spec);
  const auto sink = g.add_sink("k", kNUS);
  g.connect(src, sink);

  stream::RuntimeConfig runtime_config;
  runtime_config.geo_batch_max_delay = SimDuration::millis(500);
  auto runtime = engine.run_job(std::move(g), runtime_config);
  runtime->start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(30));
  const auto delivered_before = runtime->sink_stats(sink).records;
  EXPECT_GT(delivered_before, 0u);

  // Kill the NUS gateway: sends now fail (SAGE falls back to a failed
  // transfer, not a hang).
  auto& provider = *world.provider;
  for (cloud::VmId id = 0; id < provider.vm_count(); ++id) {
    if (provider.is_active(id) && provider.vm(id).region == kNUS) {
      provider.fail_vm(id);
      break;
    }
  }
  world.engine.run_until(world.engine.now() + SimDuration::minutes(2));
  runtime->stop();
  EXPECT_GT(runtime->wan_stats().failures, 0u);
  // The source side never dead-locked: batches kept being attempted.
  EXPECT_GT(runtime->wan_stats().batches,
            runtime->wan_stats().failures);
}

TEST(SageResilienceTest, SelfHealingReplacesDeadGatewayAndRecovers) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kNUS};
  config.monitoring.probe_interval = SimDuration::minutes(1);
  config.health_check_interval = SimDuration::seconds(30);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(5));

  // Kill the NUS gateway outright.
  auto& provider = *world.provider;
  for (cloud::VmId id = 0; id < provider.vm_count(); ++id) {
    if (provider.is_active(id) && provider.vm(id).region == kNUS) {
      provider.fail_vm(id);
      break;
    }
  }
  // Let the health loop notice and replace it, and the map re-warm.
  world.engine.run_until(world.engine.now() + SimDuration::minutes(5));
  EXPECT_GT(engine.vms_healed(), 0u);

  bool done = false;
  bool ok = false;
  engine.send(kNEU, kNUS, Bytes::mb(20), [&](const stream::SendOutcome& o) {
    ok = o.ok;
    done = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  EXPECT_TRUE(ok);
}

TEST(DeterminismTest, IdenticalSeedsReproduceDisseminationExactly) {
  auto run = [] {
    StableWorld world(/*seed=*/99);
    core::SageConfig config;
    config.regions = {kNEU, kWEU, kNUS};
    config.monitoring.probe_interval = SimDuration::minutes(1);
    core::SageEngine engine(*world.provider, config);
    engine.deploy();
    world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
    SimDuration elapsed;
    bool done = false;
    engine.disseminate(kNEU, {kWEU, kNUS}, Bytes::mb(64),
                       [&](const core::SageEngine::DisseminateResult& r) {
                         elapsed = r.elapsed;
                         done = true;
                       });
    EXPECT_TRUE(sage::testing::run_until(world.engine, [&] { return done; },
                                         SimDuration::hours(6)));
    return elapsed;
  };
  EXPECT_EQ(run().count_micros(), run().count_micros());
}

TEST(DeterminismTest, IdenticalSeedsReproduceStreamingExactly) {
  auto run = [] {
    StableWorld world(/*seed=*/7);
    core::SageConfig config;
    config.regions = {kNEU, kNUS};
    core::SageEngine engine(*world.provider, config);
    engine.deploy();
    stream::JobGraph g;
    stream::SourceSpec spec;
    spec.records_per_sec = 1500.0;
    const auto src = g.add_source("s", kNEU, spec);
    const auto agg = g.add_operator(
        "w", kNEU,
        stream::make_window_aggregate("w", SimDuration::seconds(5),
                                      stream::AggregateFn::kSum));
    const auto sink = g.add_sink("k", kNUS);
    g.connect(src, agg);
    g.connect(agg, sink);
    auto runtime = engine.run_job(std::move(g));
    runtime->start();
    world.engine.run_until(world.engine.now() + SimDuration::minutes(3));
    const auto records = runtime->sink_stats(sink).records;
    runtime->stop();
    return records;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sage
