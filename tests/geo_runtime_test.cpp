// Tests for the cross-site streaming runtime: geo-batching, WAN accounting,
// failure handling — with a scripted fake backend so behaviour is exact.
#include <gtest/gtest.h>

#include "stream/graph.hpp"
#include "stream/runtime.hpp"
#include "test_util.hpp"

namespace sage::stream {
namespace {

using cloud::Region;
using sage::testing::StableWorld;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kNUS = Region::kNorthUS;

/// Backend that delivers after a scripted delay (or fails), recording calls.
struct ScriptedBackend final : TransferBackend {
  sim::SimEngine& engine;
  SimDuration delay = SimDuration::seconds(1);
  bool fail_next = false;
  int calls = 0;
  std::vector<Bytes> sizes;

  explicit ScriptedBackend(sim::SimEngine& e) : engine(e) {}

  void send(Region src, Region dst, Bytes size, DoneFn done) override {
    EXPECT_EQ(src, kNEU);
    EXPECT_EQ(dst, kNUS);
    ++calls;
    sizes.push_back(size);
    const bool fail = fail_next;
    fail_next = false;
    engine.schedule_after(delay, [done = std::move(done), fail, this] {
      done(SendOutcome{!fail, delay});
    });
  }
  [[nodiscard]] std::string_view name() const override { return "scripted"; }
};

struct GeoRuntimeFixture : public ::testing::Test {
  StableWorld world;
  ScriptedBackend backend{world.engine};

  JobGraph cross_site_graph(double rate, Bytes record_size = Bytes::of(200)) {
    JobGraph g;
    SourceSpec spec;
    spec.records_per_sec = rate;
    spec.record_size = record_size;
    src_ = g.add_source("s", kNEU, spec);
    sink_ = g.add_sink("k", kNUS);
    g.connect(src_, sink_);
    return g;
  }

  VertexId src_ = 0;
  VertexId sink_ = 0;
};

TEST_F(GeoRuntimeFixture, BatchesCrossTheWan) {
  RuntimeConfig config;
  config.geo_batch_max_bytes = Bytes::kb(100);
  config.geo_batch_max_delay = SimDuration::seconds(1);
  StreamRuntime runtime(*world.provider, cross_site_graph(1000.0), backend, config);
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(20));
  runtime.stop();

  EXPECT_GT(backend.calls, 10);
  const SinkStats& stats = runtime.sink_stats(sink_);
  EXPECT_GT(stats.records, 8000u);
  const WanStats& wan = runtime.wan_stats();
  // The last batch may still be in flight when the run stops.
  EXPECT_GE(wan.batches + 1, static_cast<std::uint64_t>(backend.calls));
  EXPECT_EQ(wan.failures, 0u);
  EXPECT_GT(wan.bytes, Bytes::mb(1.5));
}

TEST_F(GeoRuntimeFixture, SizeTriggerFlushesAtThreshold) {
  RuntimeConfig config;
  config.geo_batch_max_bytes = Bytes::kb(50);
  config.geo_batch_max_delay = SimDuration::hours(10);  // effectively never
  StreamRuntime runtime(*world.provider, cross_site_graph(5000.0), backend, config);
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(10));
  runtime.stop();
  ASSERT_GT(backend.calls, 0);
  // Every flush was triggered by size, so batches are at least the limit.
  for (const Bytes b : backend.sizes) EXPECT_GE(b, Bytes::kb(50));
}

TEST_F(GeoRuntimeFixture, DelayTriggerFlushesSparseStreams) {
  RuntimeConfig config;
  config.geo_batch_max_bytes = Bytes::mb(100);  // size trigger unreachable
  config.geo_batch_max_delay = SimDuration::seconds(2);
  StreamRuntime runtime(*world.provider, cross_site_graph(10.0), backend, config);
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(30));
  runtime.stop();
  EXPECT_GT(backend.calls, 5);
  const SinkStats& stats = runtime.sink_stats(sink_);
  EXPECT_GT(stats.records, 200u);
  // End-to-end latency includes batching delay + transfer delay but stays
  // bounded by roughly max_delay + flush period + backend delay.
  EXPECT_LT(stats.latency_ms.quantile(0.95), 6000.0);
}

TEST_F(GeoRuntimeFixture, FailedBatchIsCountedAndDropped) {
  RuntimeConfig config;
  config.geo_batch_max_bytes = Bytes::kb(50);
  StreamRuntime runtime(*world.provider, cross_site_graph(2000.0), backend, config);
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(3));
  backend.fail_next = true;
  world.engine.run_until(world.engine.now() + SimDuration::seconds(10));
  runtime.stop();
  EXPECT_EQ(runtime.wan_stats().failures, 1u);
  // The stream keeps flowing after the loss.
  EXPECT_GT(runtime.sink_stats(sink_).records, 0u);
}

TEST_F(GeoRuntimeFixture, OneBatchInFlightPerEdge) {
  // With a very slow backend, flushes must queue, not overlap.
  backend.delay = SimDuration::seconds(30);
  RuntimeConfig config;
  config.geo_batch_max_bytes = Bytes::kb(10);
  config.geo_batch_max_delay = SimDuration::seconds(1);
  StreamRuntime runtime(*world.provider, cross_site_graph(1000.0), backend, config);
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(45));
  runtime.stop();
  // 45 s / 30 s per send -> at most 2 sends despite dozens of flushes.
  EXPECT_LE(backend.calls, 2);
}

TEST_F(GeoRuntimeFixture, WanLatencyDominatesEndToEnd) {
  backend.delay = SimDuration::seconds(5);
  RuntimeConfig config;
  config.geo_batch_max_delay = SimDuration::millis(500);
  StreamRuntime runtime(*world.provider, cross_site_graph(500.0), backend, config);
  runtime.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(30));
  runtime.stop();
  const SinkStats& stats = runtime.sink_stats(sink_);
  ASSERT_GT(stats.records, 0u);
  EXPECT_GT(stats.latency_ms.quantile(0.5), 5000.0);
}

}  // namespace
}  // namespace sage::stream
