// Tests for the Monitoring Agent service.
#include "monitor/monitoring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace sage::monitor {
namespace {

using cloud::Region;
using cloud::VmSize;
using sage::testing::StableWorld;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kNUS = Region::kNorthUS;
constexpr Region kWEU = Region::kWestEU;

struct MonitoringFixture : public ::testing::Test {
  StableWorld world;
  MonitorConfig config;

  std::unique_ptr<MonitoringService> make(std::vector<Region> regions) {
    auto service = std::make_unique<MonitoringService>(*world.provider, config);
    for (Region r : regions) {
      service->register_agent(r, world.provider->provision(r, VmSize::kSmall).id);
    }
    return service;
  }
};

TEST_F(MonitoringFixture, ProbesProduceLinkEstimates) {
  config.probe_interval = SimDuration::minutes(1);
  auto service = make({kNEU, kNUS});
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(20));

  const LinkEstimate est = service->estimate(kNEU, kNUS);
  ASSERT_TRUE(est.ready());
  EXPECT_GT(est.samples, 5u);
  // Stable topology: the estimate must sit at the per-flow TCP cap.
  const double expected =
      world.provider->topology().link(kNEU, kNUS).per_flow_cap.to_mb_per_sec();
  EXPECT_NEAR(est.mean_mbps, expected, expected * 0.15);
}

TEST_F(MonitoringFixture, PairsRequireBothAgents) {
  auto service = make({kNEU});
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(30));
  EXPECT_FALSE(service->estimate(kNEU, kNUS).ready());
  EXPECT_EQ(service->probes_sent(), 0u);
}

TEST_F(MonitoringFixture, AgentAddedLaterStartsProbing) {
  config.probe_interval = SimDuration::minutes(1);
  auto service = make({kNEU});
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(5));
  service->register_agent(kNUS, world.provider->provision(kNUS, VmSize::kSmall).id);
  world.engine.run_until(world.engine.now() + SimDuration::minutes(15));
  EXPECT_TRUE(service->estimate(kNEU, kNUS).ready());
  EXPECT_TRUE(service->estimate(kNUS, kNEU).ready());
}

TEST_F(MonitoringFixture, SnapshotCoversAllMonitoredPairs) {
  config.probe_interval = SimDuration::minutes(1);
  auto service = make({kNEU, kNUS, kWEU});
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(30));
  const ThroughputMatrix m = service->snapshot();
  for (Region a : {kNEU, kNUS, kWEU}) {
    for (Region b : {kNEU, kNUS, kWEU}) {
      if (a == b) continue;
      EXPECT_TRUE(m.at(a, b).ready()) << cloud::region_name(a) << "->"
                                      << cloud::region_name(b);
    }
  }
  EXPECT_EQ(m.taken_at, world.engine.now());
}

TEST_F(MonitoringFixture, TransferObservationsFeedTheMap) {
  auto service = make({kNEU, kNUS});
  // No probing started: estimates can only come from reported observations.
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(3.0));
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(5.0));
  const LinkEstimate est = service->estimate(kNEU, kNUS);
  ASSERT_TRUE(est.ready());
  EXPECT_EQ(est.samples, 2u);
  EXPECT_GT(est.mean_mbps, 2.9);
  EXPECT_LT(est.mean_mbps, 5.1);
}

TEST_F(MonitoringFixture, BusyLinkSuspendsProbes) {
  config.probe_interval = SimDuration::seconds(30);
  config.suspend_when_busy = true;
  auto service = make({kNEU, kNUS});
  service->start();
  // Saturate the link with a long foreign transfer.
  const auto a = world.provider->provision(kNEU, VmSize::kSmall);
  const auto b = world.provider->provision(kNUS, VmSize::kSmall);
  bool transfer_done = false;
  world.provider->transfer(a.id, b.id, Bytes::mb(200), {},
                           [&](const cloud::FlowResult&) { transfer_done = true; });
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
  EXPECT_GT(service->probes_suspended(), 0u);
}

TEST_F(MonitoringFixture, StopHaltsProbing) {
  config.probe_interval = SimDuration::minutes(1);
  auto service = make({kNEU, kNUS});
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
  service->stop();
  const auto sent = service->probes_sent();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(30));
  EXPECT_EQ(service->probes_sent(), sent);
}

TEST_F(MonitoringFixture, SampleHookSeesEverySample) {
  config.probe_interval = SimDuration::minutes(1);
  auto service = make({kNEU, kNUS});
  int hook_calls = 0;
  service->set_sample_hook(
      [&](Region, Region, SimTime, double mbps) {
        ++hook_calls;
        EXPECT_GT(mbps, 0.0);
      });
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
  EXPECT_GT(hook_calls, 0);
}

TEST_F(MonitoringFixture, CpuEstimateIsNearNominal) {
  config.cpu_probe_interval = SimDuration::minutes(1);
  auto service = make({kNEU, kNUS});
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::hours(2));
  const double cpu = service->cpu_estimate(kNEU);
  EXPECT_GT(cpu, 0.6);
  EXPECT_LT(cpu, 1.2);
  // Unmonitored region falls back to nominal.
  EXPECT_DOUBLE_EQ(service->cpu_estimate(Region::kWestUS), 1.0);
}

TEST_F(MonitoringFixture, HistoryExportsAsCsv) {
  config.probe_interval = SimDuration::minutes(1);
  auto service = make({kNEU, kNUS});
  service->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
  std::ostringstream csv;
  const std::size_t rows = service->export_history_csv(csv);
  EXPECT_GT(rows, 5u);
  const std::string text = csv.str();
  EXPECT_NE(text.find("src,dst,time_s,mbps"), std::string::npos);
  EXPECT_NE(text.find("NEU,NUS"), std::string::npos);
  // One header + `rows` data lines.
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            rows + 1);
}

TEST_F(MonitoringFixture, EstimatorKindIsConfigurable) {
  config.kind = EstimatorKind::kLastSample;
  auto service = make({kNEU, kNUS});
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(2.0));
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(8.0));
  EXPECT_DOUBLE_EQ(service->estimate(kNEU, kNUS).mean_mbps, 8.0);
}

TEST_F(MonitoringFixture, SampleEpochBumpsOnEveryAcceptedSample) {
  auto service = make({kNEU, kNUS});
  EXPECT_EQ(service->sample_epoch(), 0u);
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(4.0));
  EXPECT_EQ(service->sample_epoch(), 1u);
  service->report_transfer_observation(kNUS, kNEU, ByteRate::mb_per_sec(6.0));
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(5.0));
  EXPECT_EQ(service->sample_epoch(), 3u);
  // The snapshot carries the epoch of the contents it was built from.
  EXPECT_EQ(service->snapshot().epoch, 3u);
}

TEST_F(MonitoringFixture, SnapshotIsServedFromCacheUntilEpochMoves) {
  auto service = make({kNEU, kNUS});
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(4.0));
  (void)service->snapshot();
  EXPECT_EQ(service->snapshots_rebuilt(), 1u);
  EXPECT_EQ(service->snapshots_cached(), 0u);
  // Same epoch: repeated calls answer from the cache, no rebuild.
  (void)service->snapshot();
  (void)service->snapshot();
  EXPECT_EQ(service->snapshots_rebuilt(), 1u);
  EXPECT_EQ(service->snapshots_cached(), 2u);
  // A new sample dirties the map; the next snapshot rebuilds exactly once.
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(9.0));
  (void)service->snapshot();
  EXPECT_EQ(service->snapshots_rebuilt(), 2u);
  EXPECT_EQ(service->snapshots_cached(), 2u);
}

TEST_F(MonitoringFixture, CachedSnapshotRefreshesTakenAtAndTracksNow) {
  auto service = make({kNEU, kNUS});
  service->report_transfer_observation(kNEU, kNUS, ByteRate::mb_per_sec(4.0));
  (void)service->snapshot();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(3));
  // Even a cache hit stamps the matrix with the current sim time.
  EXPECT_EQ(service->snapshot().taken_at, world.engine.now());
  EXPECT_EQ(service->snapshots_cached(), 1u);
}

TEST_F(MonitoringFixture, CachedAndUncachedSnapshotsAgreeExactly) {
  config.probe_interval = SimDuration::minutes(1);
  auto cached_service = make({kNEU, kNUS, kWEU});
  MonitorConfig uncached_config = config;
  uncached_config.cache_snapshot = false;
  uncached_config.estimator.cache_stats = false;
  // A second service over the same provider would double the probe traffic
  // and change what both observe, so feed both identical synthetic samples.
  auto uncached_service =
      std::make_unique<MonitoringService>(*world.provider, uncached_config);
  for (Region r : {kNEU, kNUS, kWEU}) {
    uncached_service->register_agent(
        r, world.provider->provision(r, VmSize::kSmall).id);
  }
  Rng rng(29);
  const Region regions[] = {kNEU, kNUS, kWEU};
  for (int i = 0; i < 200; ++i) {
    const Region a = regions[rng.uniform_int(0, 2)];
    const Region b = regions[rng.uniform_int(0, 2)];
    if (a == b) continue;
    const auto rate = ByteRate::mb_per_sec(rng.uniform(1.0, 20.0));
    cached_service->report_transfer_observation(a, b, rate);
    uncached_service->report_transfer_observation(a, b, rate);
    if (i % 7 == 0) {
      const ThroughputMatrix& c = cached_service->snapshot();
      const ThroughputMatrix& u = uncached_service->snapshot();
      for (Region x : regions) {
        for (Region y : regions) {
          EXPECT_DOUBLE_EQ(c.at(x, y).mean_mbps, u.at(x, y).mean_mbps);
          EXPECT_DOUBLE_EQ(c.at(x, y).stddev_mbps, u.at(x, y).stddev_mbps);
          EXPECT_EQ(c.at(x, y).samples, u.at(x, y).samples);
        }
      }
    }
  }
  // The cached service actually exercised the lazy-rebuild path.
  EXPECT_GT(cached_service->snapshots_rebuilt(), 0u);
  EXPECT_EQ(uncached_service->snapshots_cached(), 0u);
}

}  // namespace
}  // namespace sage::monitor
