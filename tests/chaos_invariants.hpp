// Reusable invariant checker for chaos (fault-injection) runs.
//
// A ChaosInvariants instance accumulates violations as strings instead of
// asserting inline, so callers can attach the context a failure needs for a
// one-line repro (seed + FaultPlan::describe()) before failing the test.
// Every check holds for ARBITRARY fault schedules — outages, partitions,
// aborted flows, poisoned estimators — because each one is conservation or
// monotonicity, not a statement about the healthy path:
//
//   * fabric flows:  started == completed + failed + cancelled + active
//   * fabric bytes:  moved + forgiven + aborted <= offered, with equality
//                    once no flow is active
//   * link vs egress: per-pair-link byte counters (cross-region edges) sum
//                    exactly to the fabric's own egress accounting
//   * epochs:        MonitoringService::sample_epoch() never decreases
//   * events:        scheduled == fired + cancelled + live, and at teardown
//                    no more than the caller-allowed number of live events
//                    remain (0 for drained worlds)
//
// Future robustness PRs plug their scenarios into this header rather than
// re-deriving the accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "monitor/monitoring.hpp"
#include "obs/obs.hpp"
#include "simcore/engine.hpp"
#include "simcore/sharded_engine.hpp"
#include "stream/graph.hpp"
#include "stream/runtime.hpp"

namespace sage::testing {

class ChaosInvariants {
 public:
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::string report() const {
    std::string out;
    for (const std::string& v : violations_) {
      out += "  invariant violated: " + v + "\n";
    }
    return out;
  }

  /// Fabric conservation from the metrics registry. Call at any event
  /// boundary (engine quiescent or between steps); requires the engine to
  /// have observability enabled (no-op otherwise — there are no counters to
  /// balance). The engine must be the one driving `fabric`.
  void check_fabric(const sim::SimEngine& engine, const cloud::Fabric& fabric) {
    const obs::Observability* o = engine.obs();
    if (o == nullptr) return;
    const auto& m = o->metrics();
    const auto count = [&](const char* name) -> std::uint64_t {
      const obs::Counter* c = m.find_counter(name);
      return c != nullptr ? c->value() : 0u;
    };

    const std::uint64_t started = count("fabric.flows.started");
    const std::uint64_t done = count("fabric.flows.completed") +
                               count("fabric.flows.failed") +
                               count("fabric.flows.cancelled");
    const std::uint64_t active = fabric.active_flow_count();
    if (started != done + active) {
      fail("fabric flows: started=" + std::to_string(started) +
           " != finished=" + std::to_string(done) + " + active=" +
           std::to_string(active));
    }

    const std::uint64_t offered = count("fabric.bytes.offered");
    const std::uint64_t settled = count("fabric.bytes.moved") +
                                  count("fabric.bytes.forgiven") +
                                  count("fabric.bytes.aborted");
    if (settled > offered) {
      fail("fabric bytes: moved+forgiven+aborted=" + std::to_string(settled) +
           " exceeds offered=" + std::to_string(offered));
    }
    if (active == 0 && settled != offered) {
      fail("fabric bytes at quiescence: moved+forgiven+aborted=" +
           std::to_string(settled) + " != offered=" + std::to_string(offered));
    }

    // The cross-region per-link byte counters and the fabric's egress meter
    // advance in the same step, so they agree exactly — even mid-run, even
    // with flows stranded at rate zero by a downed link.
    std::uint64_t cross_link_bytes = 0;
    for (const cloud::Topology::Edge& e : fabric.topology().edges()) {
      if (e.src == e.dst) continue;  // intra-DC byte counters are not egress
      const std::string label = std::string(cloud::region_name(e.src)) + "->" +
                                std::string(cloud::region_name(e.dst));
      if (const obs::Counter* c = m.find_counter("fabric.link.bytes", {{"link", label}})) {
        cross_link_bytes += c->value();
      }
    }
    Bytes egress = Bytes::zero();
    for (std::size_t r = 0; r < fabric.topology().region_count(); ++r) {
      egress += fabric.egress_from(cloud::make_region(r));
    }
    if (cross_link_bytes != static_cast<std::uint64_t>(egress.count())) {
      fail("fabric egress: cross-link bytes=" + std::to_string(cross_link_bytes) +
           " != egress=" + std::to_string(egress.count()));
    }
  }

  /// Stream record conservation over the runtime's effective (possibly
  /// fused) graph: per-vertex arrivals are consumed or queued, and globally
  /// every source record is at a sink, retained in an operator, queued,
  /// riding the WAN, or recorded lost — faults may grow `lost`, but nothing
  /// is allowed to vanish unaccounted. Requires obs on the engine.
  void check_stream(const sim::SimEngine& engine, stream::StreamRuntime& runtime) {
    const obs::Observability* o = engine.obs();
    if (o == nullptr) return;
    const auto& m = o->metrics();
    const auto vcount = [&](const char* name, const std::string& vertex) -> std::uint64_t {
      const obs::Counter* c = m.find_counter(name, {{"vertex", vertex}});
      return c != nullptr ? c->value() : 0u;
    };
    const auto gcount = [&](const char* name) -> std::uint64_t {
      const obs::Counter* c = m.find_counter(name);
      return c != nullptr ? c->value() : 0u;
    };

    const stream::JobGraph& graph = runtime.graph();
    std::uint64_t source_produced = 0;
    std::uint64_t sink_arrived = 0;
    std::uint64_t retained_in_ops = 0;
    std::uint64_t queued = 0;
    for (const stream::Vertex& v : graph.vertices()) {
      const std::uint64_t arrived = vcount("stream.records.arrived", v.name);
      const std::uint64_t consumed = vcount("stream.records.consumed", v.name);
      const std::uint64_t produced = vcount("stream.records.produced", v.name);
      switch (v.kind) {
        case stream::VertexKind::kSource:
          source_produced += produced;
          break;
        case stream::VertexKind::kSink:
          sink_arrived += arrived;
          break;
        case stream::VertexKind::kOperator: {
          const std::uint64_t depth = runtime.queue_depth(v.id);
          if (arrived != consumed + depth) {
            fail("stream vertex " + v.name + ": arrived=" + std::to_string(arrived) +
                 " != consumed=" + std::to_string(consumed) + " + queued=" +
                 std::to_string(depth));
          }
          if (consumed < produced) {
            fail("stream vertex " + v.name + ": produced=" + std::to_string(produced) +
                 " exceeds consumed=" + std::to_string(consumed));
          }
          retained_in_ops += consumed - produced;
          queued += depth;
          break;
        }
      }
    }

    std::uint64_t wan_sent = 0;
    for (const stream::Edge& e : graph.edges()) {
      const stream::Vertex& from = graph.vertex(e.from);
      const stream::Vertex& to = graph.vertex(e.to);
      const obs::Counter* sent =
          m.find_counter("stream.edge.records", {{"edge", from.name + "->" + to.name}});
      if (sent == nullptr) continue;  // edge never carried a record
      if (from.site == to.site) {
        if (sent->value() != vcount("stream.records.arrived", to.name)) {
          fail("stream local edge " + from.name + "->" + to.name + ": sent=" +
               std::to_string(sent->value()) + " != arrived downstream");
        }
      } else {
        wan_sent += sent->value();
      }
    }
    const std::uint64_t wan_recv = gcount("stream.wan.records.recv");
    const std::uint64_t wan_lost = gcount("stream.wan.records.lost");
    const std::uint64_t wan_pending = runtime.geo_pending_records();
    if (wan_sent != wan_recv + wan_lost + wan_pending) {
      fail("stream wan: sent=" + std::to_string(wan_sent) + " != recv=" +
           std::to_string(wan_recv) + " + lost=" + std::to_string(wan_lost) +
           " + pending=" + std::to_string(wan_pending));
    }
    if (source_produced != sink_arrived + retained_in_ops + queued + wan_pending + wan_lost) {
      fail("stream records: produced=" + std::to_string(source_produced) +
           " != sink=" + std::to_string(sink_arrived) + " + retained=" +
           std::to_string(retained_in_ops) + " + queued=" + std::to_string(queued) +
           " + wan_pending=" + std::to_string(wan_pending) + " + wan_lost=" +
           std::to_string(wan_lost));
    }
  }

  /// Sample-epoch monotonicity. Call repeatedly over a run (e.g. from a
  /// periodic task or between steps); each call also verifies the snapshot
  /// epoch never runs ahead of the service epoch.
  void check_epoch(const monitor::MonitoringService& monitoring) {
    const std::uint64_t epoch = monitoring.sample_epoch();
    if (epoch < last_epoch_) {
      fail("sample epoch went backwards: " + std::to_string(last_epoch_) +
           " -> " + std::to_string(epoch));
    }
    last_epoch_ = epoch;
    const std::uint64_t snap = monitoring.snapshot().epoch;
    if (snap > epoch) {
      fail("snapshot epoch " + std::to_string(snap) +
           " ahead of service epoch " + std::to_string(epoch));
    }
  }

  /// Event accounting; call any time. `allowed_live` is the number of live
  /// events a drained world may legitimately hold (0 after a full drain;
  /// more while periodic tasks are still armed).
  void check_engine(const sim::SimEngine& engine, std::uint64_t allowed_live) {
    check_event_counts(engine.events_scheduled(), engine.events_fired(),
                       engine.events_cancelled(), engine.live_events(),
                       allowed_live);
  }

  /// Sharded variant over the aggregate lane counters (engine quiescent).
  /// Non-const because shard() exposes the mutable lane engines.
  void check_engine(sim::ShardedSimEngine& engine, std::uint64_t allowed_live) {
    std::size_t live = 0;
    for (std::size_t s = 0; s < engine.lane_count(); ++s) {
      live += engine.shard(s).live_events();
    }
    check_event_counts(engine.events_scheduled(), engine.events_fired(),
                       engine.events_cancelled(), live, allowed_live);
  }

 private:
  void fail(std::string msg) { violations_.push_back(std::move(msg)); }

  void check_event_counts(std::uint64_t scheduled, std::uint64_t fired,
                          std::uint64_t cancelled, std::uint64_t live,
                          std::uint64_t allowed_live) {
    if (scheduled != fired + cancelled + live) {
      fail("engine events: scheduled=" + std::to_string(scheduled) +
           " != fired=" + std::to_string(fired) + " + cancelled=" +
           std::to_string(cancelled) + " + live=" + std::to_string(live));
    }
    if (live > allowed_live) {
      fail("leaked events at teardown: " + std::to_string(live) + " live, " +
           std::to_string(allowed_live) + " allowed");
    }
  }

  std::vector<std::string> violations_;
  std::uint64_t last_epoch_ = 0;
};

}  // namespace sage::testing
