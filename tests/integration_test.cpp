// End-to-end integration tests: full streaming jobs over SAGE vs baselines,
// with cost accounting, on the simulated multi-site cloud.
#include <gtest/gtest.h>

#include "baselines/backends.hpp"
#include "core/placement.hpp"
#include "core/sage.hpp"
#include "test_util.hpp"
#include "workload/workloads.hpp"

namespace sage {
namespace {

using cloud::Region;
using sage::testing::NoisyWorld;
using sage::testing::StableWorld;
using sage::testing::run_until;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;

TEST(IntegrationTest, SensorGridJobRunsOnSage) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kWEU, kNUS};
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  workload::SensorGridParams params;
  params.sites = {kNEU, kWEU, kNUS};
  params.aggregation_site = kNUS;
  params.records_per_sec_per_site = 1000.0;
  auto graph = workload::make_sensor_grid_job(params);

  auto runtime = engine.run_job(std::move(graph));
  runtime->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(5));
  runtime->stop();

  // Find the sink and confirm aggregates arrived from all sites.
  for (const auto& v : runtime->graph().vertices()) {
    if (v.kind == stream::VertexKind::kSink) {
      const auto& stats = runtime->sink_stats(v.id);
      EXPECT_GT(stats.records, 10u);
      // Global means of sensor readings centred on 20.
      EXPECT_GT(stats.latency_ms.count(), 0u);
    }
  }
  EXPECT_GT(runtime->wan_stats().bytes, Bytes::zero());
  EXPECT_EQ(runtime->wan_stats().failures, 0u);
}

TEST(IntegrationTest, ClickstreamJobProducesTrends) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kWEU, Region::kEastUS, Region::kWestUS};
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  workload::ClickstreamParams params;
  params.events_per_sec_per_site = 2000.0;
  auto graph = workload::make_clickstream_job(params);
  auto runtime = engine.run_job(std::move(graph));
  runtime->start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(3));
  runtime->stop();

  for (const auto& v : runtime->graph().vertices()) {
    if (v.kind == stream::VertexKind::kSink) {
      EXPECT_GT(runtime->sink_stats(v.id).records, 0u);
    }
  }
}

TEST(IntegrationTest, SageBeatsBlobRelayOnMetaReduceBulk) {
  // The A-Brain headline: for large partial-result files, SAGE's engine
  // finishes the staging far sooner than blob-store relaying.
  auto run_with = [](auto&& make_backend) {
    NoisyWorld world(/*seed=*/5);
    // A-Brain ran on Extra-Large instances (800 Mbps NICs): the blob
    // service's per-operation ceiling, not the VM NIC, is then the
    // baseline's bottleneck — exactly the regime the application hit.
    baselines::GatewayPool pool(*world.provider, cloud::VmSize::kXLarge);
    auto backend = make_backend(world, pool);
    workload::MetaReduceParams params;
    params.sites = {kNEU, kWEU};
    params.reducer_site = kNUS;
    params.files_per_site = 12;
    params.file_size = Bytes::mb(40);
    params.concurrency_per_site = 4;
    bool done = false;
    workload::MetaReduceResult result{};
    workload::run_metareduce(world.engine, *backend, params,
                             [&](const workload::MetaReduceResult& r) {
                               result = r;
                               done = true;
                             });
    EXPECT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::days(2)));
    EXPECT_EQ(result.failures, 0u);
    return result.total_time;
  };

  struct BackendHolder {
    std::unique_ptr<core::SageEngine> sage;
    std::unique_ptr<baselines::BlobRelayBackend> blob;
    stream::TransferBackend* backend = nullptr;
    stream::TransferBackend* operator->() const { return backend; }
    stream::TransferBackend& operator*() const { return *backend; }
  };

  // Both systems run their staging agents on two endpoint VMs per region.
  const SimDuration blob_time = run_with([](NoisyWorld&, baselines::GatewayPool& pool) {
    BackendHolder h;
    h.blob = std::make_unique<baselines::BlobRelayBackend>(pool, /*gateways=*/2);
    h.backend = h.blob.get();
    return h;
  });
  const SimDuration sage_time = run_with([](NoisyWorld& world, baselines::GatewayPool&) {
    BackendHolder h;
    core::SageConfig config;
    config.regions = {kNEU, kWEU, Region::kEastUS, kNUS};
    config.gateways_per_region = 2;
    config.agent_vm = cloud::VmSize::kXLarge;
    config.monitoring.probe_interval = SimDuration::minutes(1);
    h.sage = std::make_unique<core::SageEngine>(*world.provider, config);
    h.sage->deploy();
    world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
    h.backend = h.sage.get();
    return h;
  });

  EXPECT_GT(blob_time / sage_time, 2.0)
      << "blob " << to_string(blob_time) << " vs sage " << to_string(sage_time);
}

TEST(IntegrationTest, CostReportCoversWholeRun) {
  StableWorld world;
  core::SageConfig config;
  config.regions = {kNEU, kNUS};
  config.monitoring.probe_interval = SimDuration::minutes(2);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  bool done = false;
  engine.send(kNEU, kNUS, Bytes::gb(1), [&](const stream::SendOutcome& o) {
    EXPECT_TRUE(o.ok);
    done = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(12)));

  const cloud::CostReport report = engine.cost();
  // 1 GB cross-region: egress alone is $0.12; plus probes' egress.
  EXPECT_GT(report.egress.to_usd(), 0.11);
  EXPECT_GT(report.vm_lease.count_micro_usd(), 0);
  EXPECT_GT(report.total(), report.egress);
}

TEST(IntegrationTest, AutoPlacementImprovesSensorJobLatencyProxy) {
  // Placement quality proxy: estimated WAN bytes/s drops when operators are
  // placed by the locality rule versus everything at the aggregation site.
  workload::SensorGridParams params;
  params.sites = {kNEU, kWEU};
  params.aggregation_site = kNUS;
  auto graph = workload::make_sensor_grid_job(params);
  const double before = core::estimate_wan_bytes_per_sec(graph);

  // Scramble: pin all operators at the aggregation site, then re-place.
  for (const auto& v : graph.vertices()) {
    if (v.kind == stream::VertexKind::kOperator) graph.assign(v.id, kNUS);
  }
  const double scrambled = core::estimate_wan_bytes_per_sec(graph);
  core::auto_place(graph, kNUS);
  const double placed = core::estimate_wan_bytes_per_sec(graph);

  EXPECT_LT(placed, scrambled);
  EXPECT_NEAR(placed, before, before * 0.01);
}

}  // namespace
}  // namespace sage
