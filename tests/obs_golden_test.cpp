// Golden-trace test: a small fig6-style cost/time scenario (SAGE control
// plane on the stable topology, two sends with different tradeoffs) runs
// with tracing on, and its serialized span tree must match the committed
// golden file byte for byte.
//
// The golden pins the full observable shape of the scenario: which planning
// decisions fired (sched.plan instants with path/node counts), the
// per-transfer spans with their chunk children, and every simulated
// timestamp. Any change to the scheduler, the transfer engine, the fabric's
// bandwidth arithmetic or the tracer's rendering shows up as a diff here.
//
// Regenerating after an *intentional* behaviour change:
//
//   SAGE_REGEN_GOLDEN=1 ./build/tests/obs_golden_test
//
// then review the diff of tests/golden/fig6_cost_time_trace.golden like any
// other code change.
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "model/tradeoff.hpp"
#include "obs/obs.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

constexpr const char* kGoldenPath = SAGE_GOLDEN_DIR "/fig6_cost_time_trace.golden";

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool write_file(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::string produce_trace() {
  ::setenv("SAGE_OBS", "1", 1);
  std::string trace;
  {
    bench::World world(/*seed=*/1234, /*stable=*/true);
    bench::SageDeployOptions opts;
    opts.regions = {cloud::Region::kNorthEU, cloud::Region::kNorthUS};
    auto engine = bench::deploy_sage(world, opts);

    // Two sends along the fig6 cost/time axis: one at the default tradeoff,
    // one under a tight budget that forces a leaner plan.
    int done = 0;
    engine->send(cloud::Region::kNorthEU, cloud::Region::kNorthUS, Bytes::mb(24),
                 [&](const stream::SendOutcome& o) {
                   EXPECT_TRUE(o.ok);
                   ++done;
                 });
    EXPECT_TRUE(world.run_until([&] { return done == 1; }));

    model::Tradeoff cheap;
    cheap.budget = Money::usd(0.05);
    engine->send_with(cheap, cloud::Region::kNorthEU, cloud::Region::kNorthUS,
                      Bytes::mb(12), [&](const stream::SendOutcome& o) {
                        EXPECT_TRUE(o.ok);
                        ++done;
                      });
    EXPECT_TRUE(world.run_until([&] { return done == 2; }));

    EXPECT_NE(world.engine.obs(), nullptr);
    EXPECT_NE(world.engine.obs()->tracer(), nullptr);
    EXPECT_EQ(world.engine.obs()->tracer()->dropped(), 0u)
        << "scenario outgrew the trace ring; golden would be truncated";
    trace = world.engine.obs()->tracer()->serialize();
  }
  ::unsetenv("SAGE_OBS");
  return trace;
}

TEST(ObsGolden, Fig6CostTimeTraceMatchesGolden) {
  const std::string trace = produce_trace();
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("@ sched.plan"), std::string::npos);
  EXPECT_NE(trace.find("- transfer "), std::string::npos);

  if (const char* regen = std::getenv("SAGE_REGEN_GOLDEN");
      regen != nullptr && regen[0] != '\0' && std::string(regen) != "0") {
    ASSERT_TRUE(write_file(kGoldenPath, trace)) << "cannot write " << kGoldenPath;
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath << "; review the diff";
  }

  const std::string golden = read_file(kGoldenPath);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << kGoldenPath
                               << " — run with SAGE_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(trace, golden)
      << "serialized trace diverged from the golden; if the change is "
         "intentional, regenerate with SAGE_REGEN_GOLDEN=1 and review";
}

// The golden scenario must itself be reproducible, otherwise the file would
// be impossible to regenerate faithfully on another machine.
TEST(ObsGolden, ScenarioIsReproducible) {
  EXPECT_EQ(produce_trace(), produce_trace());
}

}  // namespace
}  // namespace sage
