// Differential determinism tests for chaos runs.
//
// The subsystem's contract has two halves:
//
//   * OFF is invisible: a constructed-but-disabled controller produces a
//     world byte-identical to one with no controller at all (the fabric
//     half lives in chaos_test.cpp; the streaming half is here). CI
//     additionally diffs full bench-suite stdout with SAGE_CHAOS unset vs
//     =0 against the same binary.
//   * ON is deterministic: the same seed and schedule produce bit-identical
//     results at any shard count (S in {1, 2, 4}) and any worker
//     configuration (sequential fallback, 1 worker, 4 workers), because
//     faults are lane-local events serialized through the engine like any
//     other traffic.
//
// The sharded world mirrors bench_fig_scale's invariance recipe: a shared
// *stable* topology (no RNG influence on rates), one fabric per lane, each
// flow owned by its source region's lane with fresh per-flow endpoints so
// distinct pairs settle on disjoint link sets. A fault on pair (a, b) then
// hits exactly the flows of that pair — the same set, in the same id order,
// at every S.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "chaos_invariants.hpp"
#include "cloud/fabric.hpp"
#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "obs/obs.hpp"
#include "simcore/sharded_engine.hpp"
#include "stream/graph.hpp"
#include "stream/operator.hpp"
#include "stream/runtime.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

using chaos::ChaosController;
using chaos::ChaosTargets;
using chaos::FaultPlan;
using cloud::Region;

SimTime at(double seconds) { return SimTime::epoch() + SimDuration::seconds(seconds); }

ByteRate nic() { return ByteRate::megabits_per_sec(100); }

// ---------------------------------------------------------------------------
// Chaos-on sharded fabric digest.
// ---------------------------------------------------------------------------

struct EngineKnobs {
  std::size_t shards;
  bool parallel;
  std::size_t max_workers;
};

/// Runs the canonical chaos scenario and digests every simulation-visible
/// outcome: per-flow (outcome, bytes, finish time) in flow-construction
/// order plus the lane-summed fabric byte/flow counters.
std::string chaos_digest(const EngineKnobs& knobs) {
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  const cloud::ShardPlan plan = cloud::plan_shards(*topo, knobs.shards);
  sim::ShardedSimEngine engine(sim::ShardedSimEngine::Options{
      plan.shards, plan.lookahead, knobs.parallel, knobs.max_workers});
  const auto lane_of = [&](Region r) -> std::size_t {
    return engine.collapsed() ? 0 : plan.shard(r);
  };

  obs::ObsConfig cfg;
  cfg.tracing = false;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    engine.shard(l).enable_obs(cfg);
  }

  std::vector<std::unique_ptr<cloud::Fabric>> fabrics;
  std::vector<ChaosTargets> targets;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    fabrics.push_back(std::make_unique<cloud::Fabric>(engine.shard(l), topo, 60 + l));
    targets.push_back(ChaosTargets{fabrics[l].get(), nullptr});
  }

  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }

  struct FlowProbe {
    int outcome = -1;
    std::int64_t transferred = 0;
    double finished = 0.0;
  };
  constexpr int kFlows = 24;
  std::vector<FlowProbe> probes(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    const auto [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    cloud::Fabric& owner = *fabrics[lane_of(a)];
    const auto src = owner.add_node(a, nic(), nic());
    const auto dst = owner.add_node(b, nic(), nic());
    const Bytes payload = Bytes::mb(20 + (i % 5) * 15);
    FlowProbe* probe = &probes[static_cast<std::size_t>(i)];
    owner.start_flow(src, dst, payload, {}, [probe](const cloud::FlowResult& r) {
      probe->outcome = static_cast<int>(r.outcome);
      probe->transferred = r.transferred.count();
      probe->finished = (r.finished - SimTime::epoch()).to_seconds();
    });
  }

  // One seeded schedule shared by every configuration under test: link cuts
  // (stranding and aborting), squeezes, spikes, bursts, outages, partitions.
  FaultPlan fplan =
      FaultPlan::random(99, *topo, at(5), SimDuration::seconds(60), 10);
  ChaosController chaos(engine, std::move(targets), std::move(fplan),
                        /*enabled=*/true);

  engine.run_until(at(900));

  std::string digest;
  char buf[96];
  for (int i = 0; i < kFlows; ++i) {
    const FlowProbe& p = probes[static_cast<std::size_t>(i)];
    std::snprintf(buf, sizeof(buf), "%d:%d:%lld:%.9f;", i, p.outcome,
                  static_cast<long long>(p.transferred), p.finished);
    digest += buf;
  }
  const char* kCounters[] = {"fabric.flows.started",   "fabric.flows.completed",
                             "fabric.flows.failed",    "fabric.flows.cancelled",
                             "fabric.bytes.offered",   "fabric.bytes.moved",
                             "fabric.bytes.forgiven",  "fabric.bytes.aborted"};
  for (const char* name : kCounters) {
    std::uint64_t total = 0;
    for (std::size_t l = 0; l < engine.lane_count(); ++l) {
      if (const obs::Counter* c = engine.shard(l).obs()->metrics().find_counter(name)) {
        total += c->value();
      }
    }
    digest += std::string(name) + "=" + std::to_string(total) + ";";
  }
  digest += "applied=" + std::to_string(chaos.faults_applied() / engine.lane_count()) +
            ";reverted=" + std::to_string(chaos.reverts_applied() / engine.lane_count());
  return digest;
}

TEST(ChaosDifferential, ShardCountInvariance) {
  const std::string s1 = chaos_digest({1, true, 0});
  const std::string s2 = chaos_digest({2, true, 0});
  const std::string s4 = chaos_digest({4, true, 0});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s4);
  // The scenario is non-trivial: at least one flow was killed by the
  // schedule and at least one completed despite it.
  EXPECT_NE(s1.find(":1:", 0), std::string::npos) << s1;  // kFailed outcome
  EXPECT_NE(s1.find(":0:", 0), std::string::npos) << s1;  // kCompleted outcome
}

TEST(ChaosDifferential, WorkerCountInvariance) {
  const std::string sequential = chaos_digest({4, false, 0});
  const std::string one_worker = chaos_digest({4, true, 1});
  const std::string four_workers = chaos_digest({4, true, 4});
  EXPECT_EQ(sequential, one_worker);
  EXPECT_EQ(sequential, four_workers);
}

TEST(ChaosDifferential, RepeatRunsAreBitIdentical) {
  EXPECT_EQ(chaos_digest({2, true, 0}), chaos_digest({2, true, 0}));
}

// ---------------------------------------------------------------------------
// Chaos-off: a disabled controller is invisible to a streaming world.
// ---------------------------------------------------------------------------

/// Fixed two-site pipeline with a delay backend; digests everything the
/// runtime can observe, plus the engine's event count (the strictest
/// perturbation detector short of hashing the heap).
std::string stream_digest(bool attach_disabled_controller) {
  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, cloud::stable_topology(), 7);

  stream::JobGraph g;
  stream::SourceSpec spec;
  spec.records_per_sec = 800.0;
  spec.key_count = 16;
  const auto src = g.add_source("src", Region::kNorthEU, spec);
  const auto map = g.add_operator(
      "double", Region::kNorthEU, stream::make_map("double", [](const stream::Record& r) {
        stream::Record out = r;
        out.value = r.value * 2.0;
        return out;
      }));
  const auto agg = g.add_operator(
      "agg", Region::kNorthUS,
      stream::make_window_aggregate("agg", SimDuration::seconds(1),
                                    stream::AggregateFn::kSum));
  const auto sink = g.add_sink("sink", Region::kNorthUS);
  g.connect(src, map);
  g.connect(map, agg);
  g.connect(agg, sink);

  struct DelayBackend final : stream::TransferBackend {
    sim::SimEngine& engine;
    explicit DelayBackend(sim::SimEngine& e) : engine(e) {}
    void send(Region, Region, Bytes, DoneFn done) override {
      engine.schedule_after(SimDuration::millis(120), [done = std::move(done)] {
        done(stream::SendOutcome{true, SimDuration::millis(120)});
      });
    }
    [[nodiscard]] std::string_view name() const override { return "delay"; }
  };
  DelayBackend backend(engine);

  stream::RuntimeConfig rc;
  rc.seed = 7;
  rc.geo_batch_max_bytes = Bytes::kb(64);
  rc.geo_batch_max_delay = SimDuration::millis(200);
  stream::StreamRuntime runtime(provider, g, backend, rc);
  runtime.start();

  std::unique_ptr<ChaosController> chaos;
  if (attach_disabled_controller) {
    FaultPlan plan;
    plan.link_down(at(2), Region::kNorthEU, Region::kNorthUS, SimDuration::zero(), true)
        .region_outage(at(4), Region::kNorthUS)
        .capacity_squeeze(at(6), Region::kNorthEU, Region::kNorthUS, 0.01);
    chaos = std::make_unique<ChaosController>(engine,
                                              ChaosTargets{&provider.fabric(), nullptr},
                                              std::move(plan), /*enabled=*/false);
  }

  engine.run_until(at(15));

  const auto& ss = runtime.sink_stats(sink);
  std::string digest = "records=" + std::to_string(ss.records) +
                       ";bytes=" + std::to_string(ss.bytes.count()) +
                       ";wan_batches=" + std::to_string(runtime.wan_stats().batches) +
                       ";wan_failures=" + std::to_string(runtime.wan_stats().failures) +
                       ";pending=" + std::to_string(runtime.geo_pending_records()) +
                       ";fired=" + std::to_string(engine.events_fired());
  runtime.stop();
  return digest;
}

TEST(ChaosDifferential, DisabledControllerIsInvisibleToStreaming) {
  const std::string without = stream_digest(false);
  const std::string with = stream_digest(true);
  EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace sage
